#include "sim/runner.h"

#include <cmath>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "longitudinal/lgrr.h"
#include "longitudinal/lue.h"
#include "oracle/estimator.h"
#include "oracle/local_hash.h"
#include "oracle/params.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace loloha {

namespace {

// Stream tag separating per-step seeds from any other use of the run seed
// (population construction consumes the raw seed's Rng sequentially).
constexpr uint64_t kStepStream = 0x5749c4e1u;

uint64_t StepSeed(uint64_t seed, uint32_t t) {
  return StreamSeed(seed, kStepStream, t);
}

// Per-protocol trait object for one Run: owns the protocol's population /
// client state and supplies the only three pieces that differ between
// protocols — the sharded per-step population scan + estimator fold, the
// Definition-3.2 accounting, and the Table-1 metadata. The step loop,
// shard layout, and result assembly live once, in SpecRunner::Run.
//
// A session is constructed after the run's PoolLease (so constructors may
// shard their setup on the pool, e.g. the LOLOHA hash-row precompute) and
// consumes the run seed exactly like the pre-spec per-protocol runners,
// keeping Run(data, seed) bit-identical across the redesign.
class ProtocolSession {
 public:
  ProtocolSession(std::string name, uint32_t bins, double comm_bits)
      : name_(std::move(name)), bins_(bins), comm_bits_(comm_bits) {}
  virtual ~ProtocolSession() = default;

  const std::string& name() const { return name_; }
  uint32_t bins() const { return bins_; }
  double comm_bits_per_report() const { return comm_bits_; }

  // One collection step: fold every user's sanitized report into this
  // step's estimate. `step_seed` is the step's own stream; shard layouts
  // derive (step_seed, shard) streams so the estimate is bit-identical at
  // any thread count.
  virtual std::vector<double> Step(const Dataset& data, uint32_t t,
                                   uint64_t step_seed, ThreadPool& pool,
                                   uint32_t shards) = 0;

  // Longitudinal privacy spent by `user` after every step ran.
  virtual double AccountedEpsilon(uint32_t user) const = 0;

 private:
  std::string name_;
  uint32_t bins_;
  double comm_bits_;
};

// RAPPOR (L-SUE), L-OSUE, L-SOUE, L-OUE.
class UeSession : public ProtocolSession {
 public:
  UeSession(LueVariant variant, const ProtocolSpec& spec, const Dataset& data)
      : ProtocolSession(LueVariantName(variant), data.k(),
                        static_cast<double>(data.k())),
        eps_perm_(spec.eps_perm),
        population_(data.k(), data.n(),
                    LueChain(variant, spec.eps_perm, spec.eps_first)) {}

  std::vector<double> Step(const Dataset& data, uint32_t t,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t shards) override {
    return population_.Step(data.StepValues(t), step_seed, pool, shards);
  }

  double AccountedEpsilon(uint32_t user) const override {
    return eps_perm_ * population_.DistinctMemos(user);
  }

 private:
  double eps_perm_;
  LongitudinalUePopulation population_;
};

class GrrSession : public ProtocolSession {
 public:
  GrrSession(const ProtocolSpec& spec, const Dataset& data, uint32_t shards)
      : ProtocolSession("L-GRR", data.k(),
                        std::ceil(std::log2(data.k()))),
        eps_perm_(spec.eps_perm),
        chain_(LGrrChain(spec.eps_perm, spec.eps_first, data.k())),
        clients_(data.n(), LongitudinalGrrClient(data.k(), chain_)),
        shard_counts_(shards, data.k()) {}

  std::vector<double> Step(const Dataset& data, uint32_t t,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t shards) override {
    const uint32_t k = data.k();
    const uint32_t n = data.n();
    const uint32_t* values = data.StepValuesData(t);
    shard_counts_.Clear();
    pool.ParallelFor(shards, [&](uint32_t shard) {
      const ShardRange range = ShardBounds(n, shards, shard);
      Rng rng(StreamSeed(step_seed, shard, 0));
      uint64_t* counts = shard_counts_.Row(shard);
      for (uint64_t u = range.begin; u < range.end; ++u) {
        ++counts[clients_[u].Report(values[u], rng)];
      }
    });
    std::vector<double> counts(k, 0.0);
    shard_counts_.MergeInto(counts.data());
    return EstimateFrequenciesChained(counts, static_cast<double>(n),
                                      chain_.first, chain_.second);
  }

  double AccountedEpsilon(uint32_t user) const override {
    return eps_perm_ * clients_[user].distinct_memos();
  }

 private:
  double eps_perm_;
  ChainedParams chain_;
  std::vector<LongitudinalGrrClient> clients_;
  CacheAlignedRows<uint64_t> shard_counts_;
};

// BiLOLOHA / OLOLOHA / pinned-g LOLOHA.
class LolohaSession : public ProtocolSession {
 public:
  LolohaSession(const LolohaParams& params, const std::string& name,
                const Dataset& data, uint64_t seed, ThreadPool& pool,
                uint32_t shards)
      : ProtocolSession(name, data.k(),
                        std::ceil(std::log2(params.g))),
        eps_perm_(params.eps_perm),
        // Sharded hash-row precompute (the constructor's dominant cost).
        population_(params, data.n(), seed, pool, shards) {}

  std::vector<double> Step(const Dataset& data, uint32_t t,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t shards) override {
    return population_.Step(data.StepValues(t), step_seed, pool, shards);
  }

  double AccountedEpsilon(uint32_t user) const override {
    return eps_perm_ * population_.DistinctMemos(user);
  }

 private:
  double eps_perm_;
  LolohaPopulation population_;
};

class DBitFlipSession : public ProtocolSession {
 public:
  DBitFlipSession(const ProtocolSpec& spec, const Dataset& data,
                  uint32_t b, uint32_t d, Rng& rng)
      : ProtocolSession(spec.DisplayName(), b, static_cast<double>(d)),
        eps_perm_(spec.eps_perm),
        population_(Bucketizer(data.k(), b), d, spec.eps_perm, data.n(),
                    rng) {}

  std::vector<double> Step(const Dataset& data, uint32_t t,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t shards) override {
    return population_.Step(data.StepValues(t), step_seed, pool, shards);
  }

  double AccountedEpsilon(uint32_t user) const override {
    return eps_perm_ * population_.DistinctStates(user);
  }

 private:
  double eps_perm_;
  DBitFlipPopulation population_;
};

// Fresh one-shot OLH every step (no memoization). Population-style
// implementation: per-user hash rows are redrawn every step, matching a
// user that samples a new hash per report.
class NaiveOlhSession : public ProtocolSession {
 public:
  NaiveOlhSession(const ProtocolSpec& spec, const Dataset& data,
                  uint32_t shards)
      : ProtocolSession("Naive-OLH", data.k(),
                        std::ceil(std::log2(OlhRange(spec.eps_perm)))),
        eps_(spec.eps_perm),
        tau_(data.tau()),
        g_(OlhRange(spec.eps_perm)),
        client_(data.k(), g_, spec.eps_perm),
        shard_support_(shards, data.k()) {
    estimator_.p = client_.params().p;
    estimator_.q = 1.0 / static_cast<double>(g_);
  }

  std::vector<double> Step(const Dataset& data, uint32_t t,
                           uint64_t step_seed, ThreadPool& pool,
                           uint32_t shards) override {
    const uint32_t k = data.k();
    const uint32_t n = data.n();
    const uint32_t g = g_;
    const uint32_t* values = data.StepValuesData(t);
    shard_support_.Clear();
    pool.ParallelFor(shards, [&](uint32_t shard) {
      const ShardRange range = ShardBounds(n, shards, shard);
      Rng rng(StreamSeed(step_seed, shard, 0));
      uint64_t* support = shard_support_.Row(shard);
      if (g <= 65535) {
        // Hash-row + support-count kernels (util/simd.h): evaluate the
        // report's hash row once per user, then SIMD-compare against the
        // reported cell in 16-bit lanes, flushing before saturation.
        std::vector<uint16_t> row(k);
        U16SupportAccumulator acc(k, support);
        for (uint64_t u = range.begin; u < range.end; ++u) {
          const LhReport report = client_.Perturb(values[u], rng);
          HashRowU16(report.hash.a(), report.hash.b(), g, k, row.data());
          acc.Add(row.data(), static_cast<uint16_t>(report.cell));
        }
      } else {
        for (uint64_t u = range.begin; u < range.end; ++u) {
          const LhReport report = client_.Perturb(values[u], rng);
          for (uint32_t v = 0; v < k; ++v) {
            if (report.hash(v) == report.cell) ++support[v];
          }
        }
      }
    });
    std::vector<double> counts(k, 0.0);
    shard_support_.MergeInto(counts.data());
    return EstimateFrequencies(counts, static_cast<double>(n), estimator_);
  }

  double AccountedEpsilon(uint32_t) const override {
    // Sequential composition: every report spends a fresh eps.
    return eps_ * static_cast<double>(tau_);
  }

 private:
  double eps_;
  uint32_t tau_;
  uint32_t g_;
  LhClient client_;
  PerturbParams estimator_;
  CacheAlignedRows<uint64_t> shard_support_;
};

// Instantiates the per-protocol session for one Run. Construction-time
// RNG use mirrors the pre-spec runners exactly: only dBitFlipPM draws from
// the raw seed's sequential Rng; LOLOHA hands the seed to its sharded
// population constructor; everything else derives per-step streams only.
std::unique_ptr<ProtocolSession> MakeSession(const ProtocolSpec& spec,
                                             const Dataset& data,
                                             uint64_t seed, ThreadPool& pool,
                                             uint32_t shards) {
  switch (spec.id) {
    case ProtocolId::kRappor:
      return std::make_unique<UeSession>(LueVariant::kLSue, spec, data);
    case ProtocolId::kLOsue:
      return std::make_unique<UeSession>(LueVariant::kLOsue, spec, data);
    case ProtocolId::kLSoue:
      return std::make_unique<UeSession>(LueVariant::kLSoue, spec, data);
    case ProtocolId::kLOue:
      return std::make_unique<UeSession>(LueVariant::kLOue, spec, data);
    case ProtocolId::kLGrr:
      return std::make_unique<GrrSession>(spec, data, shards);
    case ProtocolId::kBiLoloha:
    case ProtocolId::kOLoloha:
      return std::make_unique<LolohaSession>(
          LolohaParamsForSpec(spec, data.k()), spec.DisplayName(), data,
          seed, pool, shards);
    case ProtocolId::kOneBitFlipPm:
    case ProtocolId::kBBitFlipPm: {
      Rng rng(seed);
      const uint32_t b = ResolveBuckets(spec, data.k());
      const uint32_t d = ResolveD(spec, b);
      return std::make_unique<DBitFlipSession>(spec, data, b, d, rng);
    }
    case ProtocolId::kNaiveOlh:
      return std::make_unique<NaiveOlhSession>(spec, data, shards);
  }
  LOLOHA_CHECK_MSG(false, "unknown protocol id");
  return nullptr;
}

// The one concrete runner: every protocol executes the same step loop and
// accounting over its session trait.
class SpecRunner : public LongitudinalRunner {
 public:
  SpecRunner(const ProtocolSpec& spec, const RunnerOptions& options)
      : spec_(spec), options_(options) {}

  std::string name() const override { return spec_.DisplayName(); }

  RunResult Run(const Dataset& data, uint64_t seed) const override {
    const PoolLease pool(options_.pool, options_.num_threads);
    const uint32_t shards = options_.num_shards;
    const std::unique_ptr<ProtocolSession> session =
        MakeSession(spec_, data, seed, *pool, shards);

    RunResult result;
    result.protocol = session->name();
    result.bins = session->bins();
    result.comm_bits_per_report = session->comm_bits_per_report();
    result.estimates.reserve(data.tau());
    for (uint32_t t = 0; t < data.tau(); ++t) {
      result.estimates.push_back(
          session->Step(data, t, StepSeed(seed, t), *pool, shards));
    }
    result.per_user_epsilon.resize(data.n());
    for (uint32_t u = 0; u < data.n(); ++u) {
      result.per_user_epsilon[u] = session->AccountedEpsilon(u);
    }
    return result;
  }

 private:
  ProtocolSpec spec_;
  RunnerOptions options_;
};

}  // namespace

uint32_t ResolveNumThreads(const RunnerOptions& options) {
  return options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                  : options.num_threads;
}

uint32_t ResolveNumShards(const RunnerOptions& options) {
  return options.num_shards == 0 ? kDefaultNumShards : options.num_shards;
}

RunnerOptions NormalizeRunnerOptions(RunnerOptions options) {
  options.num_threads = ResolveNumThreads(options);
  options.num_shards = ResolveNumShards(options);
  return options;
}

std::unique_ptr<LongitudinalRunner> MakeRunner(const ProtocolSpec& spec,
                                               const RunnerOptions& raw_options) {
  std::string error;
  LOLOHA_CHECK_MSG(spec.Validate(&error), error.c_str());
  // Resolve thread / shard defaults exactly once; session code relies on
  // normalized (nonzero) values everywhere.
  return std::make_unique<SpecRunner>(spec, NormalizeRunnerOptions(raw_options));
}

std::vector<ProtocolId> Figure3Protocols(bool include_dbitflip) {
  std::vector<ProtocolId> protocols;
  if (include_dbitflip) protocols.push_back(ProtocolId::kBBitFlipPm);
  protocols.push_back(ProtocolId::kLOsue);
  protocols.push_back(ProtocolId::kOLoloha);
  protocols.push_back(ProtocolId::kRappor);
  protocols.push_back(ProtocolId::kBiLoloha);
  if (include_dbitflip) protocols.push_back(ProtocolId::kOneBitFlipPm);
  protocols.push_back(ProtocolId::kLGrr);
  return protocols;
}

std::vector<ProtocolSpec> Figure3Specs(bool include_dbitflip,
                                       uint32_t bucket_divisor) {
  std::vector<ProtocolSpec> specs;
  for (const ProtocolId id : Figure3Protocols(include_dbitflip)) {
    ProtocolSpec spec;
    spec.id = id;
    if (spec.IsDBitFlipVariant()) spec.bucket_divisor = bucket_divisor;
    specs.push_back(spec.Canonicalized());
  }
  return specs;
}

}  // namespace loloha

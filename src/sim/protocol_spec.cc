#include "sim/protocol_spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>

#include "core/loloha_params.h"
#include "util/check.h"

namespace loloha {

namespace {

// Canonical names, one per ProtocolId, in enum order.
constexpr ProtocolSpecName kRegistry[] = {
    {ProtocolId::kRappor, "l-sue"},
    {ProtocolId::kLOsue, "l-osue"},
    {ProtocolId::kLSoue, "l-soue"},
    {ProtocolId::kLOue, "l-oue"},
    {ProtocolId::kLGrr, "l-grr"},
    {ProtocolId::kBiLoloha, "biloloha"},
    {ProtocolId::kOLoloha, "ololoha"},
    {ProtocolId::kOneBitFlipPm, "1bitflip"},
    {ProtocolId::kBBitFlipPm, "bbitflip"},
    {ProtocolId::kNaiveOlh, "naive-olh"},
};

constexpr ProtocolSpecAlias kAliases[] = {
    {"rappor", ProtocolId::kRappor},
    {"1bitflippm", ProtocolId::kOneBitFlipPm},
    {"bbitflippm", ProtocolId::kBBitFlipPm},
    {"dbitflip", ProtocolId::kBBitFlipPm},
    {"dbitflippm", ProtocolId::kBBitFlipPm},
};

std::string Lowered(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsLoloha(ProtocolId id) {
  return id == ProtocolId::kBiLoloha || id == ProtocolId::kOLoloha;
}

bool IsDBitFlip(ProtocolId id) {
  return id == ProtocolId::kOneBitFlipPm || id == ProtocolId::kBBitFlipPm;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Shortest decimal form that parses back to exactly `value`. to_chars is
// locale-independent (printf %g would emit a decimal comma under some
// LC_NUMERIC settings, colliding with the grammar's pair separator) and
// its default form is the shortest round-trip representation.
std::string FormatShortest(double value) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

bool ParseDoubleValue(std::string_view text, double* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *value);
  return result.ec == std::errc() && result.ptr == end;
}

bool ParseU32Value(std::string_view text, uint32_t* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *value);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

std::span<const ProtocolSpecName> ProtocolSpecRegistry() {
  return kRegistry;
}

std::span<const ProtocolSpecAlias> ProtocolSpecAliasRegistry() {
  return kAliases;
}

const char* ProtocolSpecCanonicalName(ProtocolId id) {
  for (const ProtocolSpecName& entry : kRegistry) {
    if (entry.id == id) return entry.name;
  }
  LOLOHA_CHECK_MSG(false, "ProtocolId missing from the spec registry");
  return "?";
}

bool ProtocolIdFromSpecName(std::string_view name, ProtocolId* id) {
  const std::string lowered = Lowered(name);
  for (const ProtocolSpecName& entry : kRegistry) {
    if (lowered == entry.name) {
      *id = entry.id;
      return true;
    }
  }
  for (const ProtocolSpecAlias& alias : kAliases) {
    if (lowered == alias.alias) {
      *id = alias.id;
      return true;
    }
  }
  return false;
}

bool ProtocolSpec::IsTwoRound() const {
  return !IsDBitFlip(id) && id != ProtocolId::kNaiveOlh;
}

bool ProtocolSpec::IsLolohaVariant() const { return IsLoloha(id); }

bool ProtocolSpec::IsDBitFlipVariant() const { return IsDBitFlip(id); }

ProtocolSpec ProtocolSpec::Canonicalized() const {
  ProtocolSpec out = *this;
  if (out.id == ProtocolId::kBiLoloha) out.g = 2;
  if (out.id == ProtocolId::kOneBitFlipPm) out.d = 1;
  if (!out.IsTwoRound()) out.eps_first = 0.0;
  return out;
}

bool ProtocolSpec::Validate(std::string* error) const {
  if (!std::isfinite(eps_perm) || eps_perm <= 0.0) {
    return Fail(error, "eps_perm must be a positive finite number");
  }
  if (IsTwoRound()) {
    if (!std::isfinite(eps_first) || eps_first <= 0.0 ||
        eps_first >= eps_perm) {
      return Fail(error, "eps_first must satisfy 0 < eps_first < eps_perm");
    }
  }
  if (IsLoloha(id)) {
    if (g == 1) return Fail(error, "g must be 0 (resolve) or >= 2");
    if (id == ProtocolId::kBiLoloha && g != 0 && g != 2) {
      return Fail(error, "biloloha fixes g = 2; use ololoha for other g");
    }
  } else if (g != 0) {
    return Fail(error, "g applies only to the LOLOHA variants");
  }
  if (IsDBitFlip(id)) {
    if (buckets == 1) return Fail(error, "buckets must be 0 (resolve) or >= 2");
    if (bucket_divisor < 1) return Fail(error, "bucket_divisor must be >= 1");
    if (id == ProtocolId::kOneBitFlipPm && d > 1) {
      return Fail(error, "1bitflip fixes d = 1; use bbitflip for other d");
    }
  } else {
    if (d != 0) return Fail(error, "d applies only to the dBitFlipPM variants");
    if (buckets != 0 || bucket_divisor != 1) {
      return Fail(error,
                  "buckets/bucket_divisor apply only to the dBitFlipPM "
                  "variants");
    }
  }
  return true;
}

bool ProtocolSpec::Parse(std::string_view text, ProtocolSpec* spec,
                         std::string* error) {
  ProtocolSpec out;
  const size_t colon = text.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  if (name.empty()) return Fail(error, "empty protocol name");

  const std::string lowered_name = Lowered(name);
  // "loloha" is the g-parameterized family name: g = 2 selects BiLOLOHA,
  // anything else OLOLOHA with that pinned g (0 = Eq. 6). Resolved after
  // the keys are read.
  const bool loloha_family = lowered_name == "loloha";
  if (!loloha_family && !ProtocolIdFromSpecName(lowered_name, &out.id)) {
    return Fail(error, "unknown protocol name '" + lowered_name + "'");
  }

  enum Key { kEpsPerm, kEpsFirst, kG, kD, kBuckets, kBucketDivisor, kNumKeys };
  bool seen[kNumKeys] = {};
  std::string_view rest = colon == std::string_view::npos
                              ? std::string_view()
                              : text.substr(colon + 1);
  bool more = colon != std::string_view::npos;
  while (more) {
    const size_t comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    more = comma != std::string_view::npos;
    rest = more ? rest.substr(comma + 1) : std::string_view();
    if (pair.empty()) {
      return Fail(error, "expected key=value after ':' or ','");
    }

    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == pair.size()) {
      return Fail(error, "malformed key=value pair '" + std::string(pair) +
                             "'");
    }
    const std::string key = Lowered(pair.substr(0, eq));
    const std::string_view value = pair.substr(eq + 1);

    Key which;
    if (key == "eps_perm") {
      which = kEpsPerm;
    } else if (key == "eps_first") {
      which = kEpsFirst;
    } else if (key == "g") {
      which = kG;
    } else if (key == "d") {
      which = kD;
    } else if (key == "buckets") {
      which = kBuckets;
    } else if (key == "bucket_divisor") {
      which = kBucketDivisor;
    } else {
      return Fail(error, "unknown key '" + key + "'");
    }
    if (seen[which]) return Fail(error, "duplicate key '" + key + "'");
    seen[which] = true;

    bool ok = true;
    switch (which) {
      case kEpsPerm:
        ok = ParseDoubleValue(value, &out.eps_perm);
        break;
      case kEpsFirst:
        ok = ParseDoubleValue(value, &out.eps_first);
        break;
      case kG:
        ok = ParseU32Value(value, &out.g);
        break;
      case kD:
        ok = ParseU32Value(value, &out.d);
        break;
      case kBuckets:
        ok = ParseU32Value(value, &out.buckets);
        break;
      case kBucketDivisor:
        ok = ParseU32Value(value, &out.bucket_divisor);
        break;
      case kNumKeys:
        ok = false;
        break;
    }
    if (!ok) {
      return Fail(error, "malformed value for '" + key + "': '" +
                             std::string(value) + "'");
    }
  }

  if (loloha_family) {
    out.id = out.g == 2 ? ProtocolId::kBiLoloha : ProtocolId::kOLoloha;
  }
  // Explicit keys that contradict the id are errors; the id-determined
  // defaults themselves (and the g=0 "resolve" sentinel, which Validate
  // also accepts) are pinned by Canonicalized() below.
  if (out.id == ProtocolId::kBiLoloha && seen[kG] && out.g != 0 &&
      out.g != 2) {
    return Fail(error, "biloloha fixes g = 2; use ololoha for other g");
  }
  if (out.id == ProtocolId::kOneBitFlipPm && seen[kD] && out.d != 1) {
    return Fail(error, "1bitflip fixes d = 1; use bbitflip for other d");
  }
  if (!out.IsTwoRound() && seen[kEpsFirst]) {
    return Fail(error, "eps_first does not apply to the one-round "
                       "protocol '" + lowered_name + "'");
  }
  out = out.Canonicalized();
  if (!out.Validate(error)) return false;
  *spec = out;
  return true;
}

ProtocolSpec ProtocolSpec::MustParse(std::string_view text) {
  ProtocolSpec spec;
  std::string error;
  LOLOHA_CHECK_MSG(Parse(text, &spec, &error),
                   ("bad protocol spec '" + std::string(text) + "': " + error)
                       .c_str());
  return spec;
}

std::string ProtocolSpec::ToString() const {
  std::string out = ProtocolSpecCanonicalName(id);
  out += ":eps_perm=" + FormatShortest(eps_perm);
  if (IsTwoRound()) out += ",eps_first=" + FormatShortest(eps_first);
  if (g != 0) out += ",g=" + std::to_string(g);
  if (d != 0) out += ",d=" + std::to_string(d);
  if (buckets != 0) out += ",buckets=" + std::to_string(buckets);
  if (bucket_divisor != 1) {
    out += ",bucket_divisor=" + std::to_string(bucket_divisor);
  }
  return out;
}

std::string ProtocolSpec::DisplayName() const {
  switch (id) {
    case ProtocolId::kOLoloha:
      if (g != 0) return "LOLOHA(g=" + std::to_string(g) + ")";
      return "OLOLOHA";
    case ProtocolId::kBBitFlipPm:
      if (d != 0) return std::to_string(d) + "BitFlipPM";
      return "bBitFlipPM";
    default:
      return ProtocolName(id);
  }
}

uint32_t ResolveLolohaG(const ProtocolSpec& spec) {
  LOLOHA_CHECK_MSG(IsLoloha(spec.id), "spec is not a LOLOHA variant");
  if (spec.id == ProtocolId::kBiLoloha) return 2;
  return spec.g == 0 ? OptimalLolohaG(spec.eps_perm, spec.eps_first) : spec.g;
}

uint32_t ResolveBuckets(const ProtocolSpec& spec, uint32_t k) {
  LOLOHA_CHECK_MSG(IsDBitFlip(spec.id), "spec is not a dBitFlipPM variant");
  if (spec.buckets != 0) {
    LOLOHA_CHECK(spec.buckets >= 2 && spec.buckets <= k);
    return spec.buckets;
  }
  LOLOHA_CHECK(spec.bucket_divisor >= 1);
  const uint32_t b = k / spec.bucket_divisor;
  LOLOHA_CHECK_MSG(b >= 2, "bucket divisor too large for this domain");
  return b;
}

uint32_t ResolveD(const ProtocolSpec& spec, uint32_t b) {
  LOLOHA_CHECK_MSG(IsDBitFlip(spec.id), "spec is not a dBitFlipPM variant");
  if (spec.id == ProtocolId::kOneBitFlipPm) return 1;
  const uint32_t d = spec.d == 0 ? b : spec.d;
  LOLOHA_CHECK_MSG(d >= 1 && d <= b, "d must be in [1, b]");
  return d;
}

LolohaParams LolohaParamsForSpec(const ProtocolSpec& spec, uint32_t k) {
  return MakeLolohaParams(k, ResolveLolohaG(spec), spec.eps_perm,
                          spec.eps_first);
}

double ApproxVarianceForSpec(const ProtocolSpec& spec, double n, uint32_t k) {
  if (IsLoloha(spec.id)) {
    return LolohaApproximateVariance(n, ResolveLolohaG(spec), spec.eps_perm,
                                     spec.eps_first);
  }
  if (IsDBitFlip(spec.id)) {
    const uint32_t b = ResolveBuckets(spec, k);
    return DBitFlipApproxVariance(n, b, ResolveD(spec, b), spec.eps_perm);
  }
  return ProtocolApproxVariance(spec.id, n, k, spec.eps_perm,
                                spec.eps_first);
}

}  // namespace loloha

// Evaluation metrics: the time-averaged MSE of Eq. (7) and the averaged
// empirical longitudinal privacy loss of Eq. (8).

#ifndef LOLOHA_SIM_METRICS_H_
#define LOLOHA_SIM_METRICS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "longitudinal/dbitflip.h"

namespace loloha {

// Eq. (7): MSE_avg = (1/τ) Σ_t (1/k) Σ_v (f_t(v) - f̂_t(v))².
// `estimates` is τ rows of k estimates each.
double MseAvg(const Dataset& data,
              const std::vector<std::vector<double>>& estimates);

// Per-step MSE series (the inner sum of Eq. 7 for each t).
std::vector<double> MseSeries(const Dataset& data,
                              const std::vector<std::vector<double>>& estimates);

// Eq. (7) against bucketized ground truth: used for dBitFlipPM with b < k,
// where the estimate rows have b bins.
double MseAvgBucketed(const Dataset& data, const Bucketizer& bucketizer,
                      const std::vector<std::vector<double>>& estimates);

// Eq. (8): mean of the per-user longitudinal losses.
double EpsAvg(const std::vector<double>& per_user_epsilon);

}  // namespace loloha

#endif  // LOLOHA_SIM_METRICS_H_

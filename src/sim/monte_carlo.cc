#include "sim/monte_carlo.h"

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace loloha {

namespace {

// Stream tag separating Monte-Carlo cell seeds from the runners' per-step
// streams (sim/runner.cc) and the populations' construction streams.
constexpr uint64_t kMonteCarloStream = 0x4d43'5355ull;  // "MCSU"

}  // namespace

uint64_t MonteCarloSeed(uint64_t base_seed, uint32_t config, uint32_t run) {
  return StreamSeed(base_seed, kMonteCarloStream + config, run);
}

std::vector<std::vector<double>> RunMonteCarloGrid(
    const MonteCarloRunnerFactory& factory, const Dataset& data,
    uint32_t num_configs, const MonteCarloOptions& options,
    const MonteCarloMetric& metric) {
  LOLOHA_CHECK(options.runs >= 1);
  std::vector<std::vector<double>> results(num_configs);
  for (auto& row : results) row.resize(options.runs);

  const auto owns = [&options](uint32_t config, uint32_t run) {
    return options.slice.Owns(options.slice_first_cell +
                              uint64_t{config} * options.runs + run);
  };
  const uint32_t total = static_cast<uint32_t>(options.slice.OwnedCount(
      uint64_t{num_configs} * options.runs + options.slice_first_cell) -
      options.slice.OwnedCount(options.slice_first_cell));
  // Shared progress counter plus callback serialization. A mutex-guarded
  // struct rather than an atomic: the guard also serializes the user's
  // progress callback, and clang's thread-safety analysis then checks the
  // discipline at compile time.
  struct ProgressState {
    Mutex mu{lock_rank::kMonteCarloProgress};
    uint32_t completed LOLOHA_GUARDED_BY(mu) = 0;
  } progress;
  const auto run_cell = [&](uint32_t config, uint32_t run) {
    const std::unique_ptr<LongitudinalRunner> runner = factory(config);
    const RunResult result =
        runner->Run(data, MonteCarloSeed(options.base_seed, config, run));
    results[config][run] = metric(config, result);
    if (options.progress) {
      MutexLock lock(progress.mu);
      options.progress(++progress.completed, total);
    }
  };

  if (options.pool == nullptr) {
    for (uint32_t config = 0; config < num_configs; ++config) {
      for (uint32_t run = 0; run < options.runs; ++run) {
        if (owns(config, run)) run_cell(config, run);
      }
    }
    return results;
  }

  // Every cell is an independent task writing a distinct slot; the only
  // synchronization needed is the WaitGroup barrier at the end.
  WaitGroup wg;
  for (uint32_t config = 0; config < num_configs; ++config) {
    for (uint32_t run = 0; run < options.runs; ++run) {
      if (!owns(config, run)) continue;
      options.pool->Submit(wg, [&run_cell, config, run] {
        run_cell(config, run);
      });
    }
  }
  options.pool->Wait(wg);
  return results;
}

std::vector<std::vector<double>> RunMonteCarloGrid(
    std::span<const ProtocolSpec> specs, const RunnerOptions& runner_options,
    const Dataset& data, const MonteCarloOptions& options,
    const MonteCarloMetric& metric) {
  return RunMonteCarloGrid(
      [&specs, &runner_options](uint32_t config) {
        return MakeRunner(specs[config], runner_options);
      },
      data, static_cast<uint32_t>(specs.size()), options, metric);
}

}  // namespace loloha

// ProtocolSpec: the library's one declarative protocol description.
//
// A spec names a protocol (by its registry name) together with its privacy
// budgets and protocol extras, and every construction path — simulation
// runners (sim/runner.h), wire collectors (server/collector.h), and the
// bench/example drivers — builds from it. New workloads are a spec string,
// not a new binary.
//
// Grammar (see README "Architecture"):
//
//   spec       := name [ ":" key "=" value { "," key "=" value } ]
//   name       := registry name or alias (case-insensitive)
//   key        := "eps_perm" | "eps_first" | "g" | "d" | "buckets"
//                 | "bucket_divisor"
//
// Examples:
//
//   "ololoha:eps_perm=2,eps_first=1"        LOLOHA, g from Eq. (6)
//   "loloha:g=2,eps_perm=1.0,eps_first=0.5" BiLOLOHA (g = 2 selects it)
//   "l-osue:eps_perm=1,eps_first=0.4"       the paper's optimized UE chain
//   "bbitflip:eps_perm=2,bucket_divisor=4"  dBitFlipPM, b = k/4, d = b
//
// Parse() validates everything that does not depend on the dataset
// (budgets, extras on the wrong protocol, malformed numbers); the
// dataset-dependent resolution (bucket counts vs k) happens in the
// Resolve* helpers. ToString() produces the canonical form, and
// Parse(ToString(spec)) == spec for every spec Parse accepts.

#ifndef LOLOHA_SIM_PROTOCOL_SPEC_H_
#define LOLOHA_SIM_PROTOCOL_SPEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "core/theory.h"

namespace loloha {

struct LolohaParams;

struct ProtocolSpec {
  ProtocolId id = ProtocolId::kBiLoloha;
  double eps_perm = 1.0;   // ε∞ (Naive-OLH: the per-step budget)
  double eps_first = 0.5;  // ε1; one-round protocols ignore it (Parse sets 0)

  // Protocol extras. Zero means "resolve from the protocol": g from Eq. (6)
  // for OLOLOHA, d = b for bBitFlipPM. `buckets` wins over `bucket_divisor`
  // when nonzero; otherwise b = k / bucket_divisor.
  uint32_t g = 0;               // LOLOHA hash range
  uint32_t d = 0;               // dBitFlipPM bits per report
  uint32_t buckets = 0;         // dBitFlipPM bucket count
  uint32_t bucket_divisor = 1;  // dBitFlipPM b = k / divisor

  friend bool operator==(const ProtocolSpec&, const ProtocolSpec&) = default;

  // Parses `text` against the grammar above. On failure returns false and,
  // when `error` is non-null, stores a one-line reason.
  static bool Parse(std::string_view text, ProtocolSpec* spec,
                    std::string* error = nullptr);

  // Parse() that LOLOHA_CHECK-fails with the parse error. For call sites
  // whose spec is a compile-time constant or already-validated user input.
  static ProtocolSpec MustParse(std::string_view text);

  // Canonical spec string; Parse(ToString()) reproduces this spec exactly
  // for any spec Parse accepts (and for any spec passing Validate, up to
  // the one-round eps_first canonicalization).
  std::string ToString() const;

  // Re-checks every Parse-time invariant on a hand-constructed spec.
  bool Validate(std::string* error = nullptr) const;

  // Paper-legend display name ("OLOLOHA", "L-GRR", "bBitFlipPM", ...).
  // Reflects a pinned g ("LOLOHA(g=5)") or d ("16BitFlipPM").
  std::string DisplayName() const;

  // True for the two-round (PRR ∘ IRR) protocols, which consume eps_first.
  bool IsTwoRound() const;

  // Protocol-family predicates, for drivers that serve only one family
  // (e.g. the LOLOHA examples) to reject foreign specs with a usage
  // message instead of tripping a CHECK deeper in.
  bool IsLolohaVariant() const;
  bool IsDBitFlipVariant() const;

  // Copy with the id-determined extras pinned (BiLOLOHA g = 2, 1BitFlipPM
  // d = 1, one-round eps_first = 0) so equal protocols compare equal.
  // Parse applies this; programmatic constructors should too.
  ProtocolSpec Canonicalized() const;
};

// ---------------------------------------------------------------------------
// Name registry: exactly one canonical entry per ProtocolId (names are
// unique; covered by the registry-completeness test), plus aliases.
// ---------------------------------------------------------------------------

struct ProtocolSpecName {
  ProtocolId id;
  const char* name;  // canonical, lowercase
};

// Every ProtocolId with its canonical spec name, in enum order.
std::span<const ProtocolSpecName> ProtocolSpecRegistry();

// Accepted alternate spellings ("rappor" -> l-sue, "dbitflip" ->
// bbitflip, ...). What --list-protocols prints next to each name.
struct ProtocolSpecAlias {
  const char* alias;  // lowercase
  ProtocolId id;
};
std::span<const ProtocolSpecAlias> ProtocolSpecAliasRegistry();

// Canonical spec name for `id` ("ololoha", "l-grr", ...).
const char* ProtocolSpecCanonicalName(ProtocolId id);

// Resolves a canonical name or alias ("rappor" -> l-sue, "dbitflip" ->
// bbitflip; case-insensitive). The g-dependent family name "loloha" is
// resolved by Parse, not here. Returns false for unknown names.
bool ProtocolIdFromSpecName(std::string_view name, ProtocolId* id);

// ---------------------------------------------------------------------------
// Dataset-dependent resolution.
// ---------------------------------------------------------------------------

// The LOLOHA hash range this spec runs at (BiLOLOHA: 2; OLOLOHA: the
// pinned g, or Eq. (6) when g == 0). Checks the spec is a LOLOHA variant.
uint32_t ResolveLolohaG(const ProtocolSpec& spec);

// The dBitFlipPM bucket count for a domain of size k (explicit `buckets`
// wins; otherwise k / bucket_divisor). Checks the result is in [2, k].
uint32_t ResolveBuckets(const ProtocolSpec& spec, uint32_t k);

// The dBitFlipPM bits-per-report for bucket count `b` (1BitFlipPM: 1;
// bBitFlipPM: the pinned d, or b when d == 0). Checks d <= b.
uint32_t ResolveD(const ProtocolSpec& spec, uint32_t b);

// Full LOLOHA parameter derivation for this spec over domain size k.
LolohaParams LolohaParamsForSpec(const ProtocolSpec& spec, uint32_t k);

// Approximate variance V* for this spec over (n, k), honoring pinned
// extras — a LOLOHA g or a dBitFlipPM bucket layout — that the id-only
// ProtocolApproxVariance(id, ...) cannot see.
double ApproxVarianceForSpec(const ProtocolSpec& spec, double n, uint32_t k);

}  // namespace loloha

#endif  // LOLOHA_SIM_PROTOCOL_SPEC_H_

#include "sim/attack.h"

#include <algorithm>
#include <vector>

#include "longitudinal/dbitflip.h"
#include "oracle/params.h"
#include "util/rng.h"

namespace loloha {

DetectionResult DBitFlipDetection(const Dataset& data, uint32_t b, uint32_t d,
                                  double eps_perm, uint64_t seed) {
  const Bucketizer bucketizer(data.k(), b);
  LOLOHA_CHECK(d >= 1 && d <= b);
  const PerturbParams params = SueParams(eps_perm);
  const uint32_t words = (d + 63) / 64;

  Rng rng(seed);
  DetectionResult result;

  std::vector<uint32_t> pool(b);
  std::vector<uint8_t> is_sampled(b);
  std::vector<uint32_t> sampled;
  // memo[bucket] -> packed d bits; `drawn[bucket]` marks validity.
  std::vector<uint64_t> memo(static_cast<size_t>(b) * words);
  std::vector<uint8_t> drawn(b);
  std::vector<uint32_t> drawn_list;

  for (uint32_t u = 0; u < data.n(); ++u) {
    // Fixed sampled set for this user.
    std::fill(is_sampled.begin(), is_sampled.end(), 0);
    for (uint32_t j = 0; j < b; ++j) pool[j] = j;
    sampled.clear();
    for (uint32_t l = 0; l < d; ++l) {
      const uint32_t pick = l + static_cast<uint32_t>(rng.UniformInt(b - l));
      std::swap(pool[l], pool[pick]);
      sampled.push_back(pool[l]);
      is_sampled[pool[l]] = 1;
    }
    for (const uint32_t j : drawn_list) drawn[j] = 0;
    drawn_list.clear();

    auto ensure_memo = [&](uint32_t bucket) -> const uint64_t* {
      uint64_t* slot = &memo[static_cast<size_t>(bucket) * words];
      if (!drawn[bucket]) {
        std::fill(slot, slot + words, 0);
        for (uint32_t l = 0; l < d; ++l) {
          const double prob = (sampled[l] == bucket) ? params.p : params.q;
          if (rng.Bernoulli(prob)) slot[l >> 6] |= uint64_t{1} << (l & 63);
        }
        drawn[bucket] = 1;
        drawn_list.push_back(bucket);
      }
      return slot;
    };

    bool any_change = false;
    bool all_detected = true;
    uint32_t prev_bucket = bucketizer.Bucket(data.value(u, 0));
    ensure_memo(prev_bucket);
    for (uint32_t t = 1; t < data.tau(); ++t) {
      const uint32_t bucket = bucketizer.Bucket(data.value(u, t));
      if (bucket == prev_bucket) continue;
      any_change = true;
      const uint64_t* cur = ensure_memo(bucket);
      const uint64_t* prev = &memo[static_cast<size_t>(prev_bucket) * words];
      if (std::equal(cur, cur + words, prev)) {
        // The two memoized reports coincide: this change is invisible.
        all_detected = false;
      }
      prev_bucket = bucket;
    }
    if (any_change) {
      ++result.users_with_changes;
      if (all_detected) ++result.users_fully_detected;
    }
  }
  return result;
}

}  // namespace loloha

#include "sim/experiment.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/loloha_params.h"
#include "data/generators.h"
#include "sim/accountant.h"
#include "sim/attack.h"
#include "sim/metrics.h"
#include "sim/monte_carlo.h"
#include "sim/runner.h"
#include "sim/slice.h"
#include "util/check.h"
#include "util/thread_pool.h"

// Configure-time provenance stamp (CMake: git describe --always --dirty).
#ifndef LOLOHA_GIT_DESCRIBE
#define LOLOHA_GIT_DESCRIBE "unknown"
#endif

namespace loloha {

namespace {

struct KindName {
  ExperimentKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {ExperimentKind::kMse, "mse"},
    {ExperimentKind::kVariance, "variance"},
    {ExperimentKind::kOptimalG, "optimal_g"},
    {ExperimentKind::kPrivacyLoss, "privacy_loss"},
    {ExperimentKind::kComparison, "comparison"},
    {ExperimentKind::kDetection, "detection"},
};

constexpr const char* kDatasetNames[] = {"syn", "adult", "db_mt", "db_de"};

bool IsKnownDataset(std::string_view name) {
  for (const char* known : kDatasetNames) {
    if (name == known) return true;
  }
  return false;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

// Shortest decimal form that parses back to exactly `value` (same
// contract as ProtocolSpec::ToString: the plan round-trip is exact).
std::string FormatShortest(double value) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

bool ParseDoubleValue(std::string_view text, double* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *value);
  return result.ec == std::errc() && result.ptr == end;
}

template <typename UInt>
bool ParseUIntValue(std::string_view text, UInt* value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, *value);
  return result.ec == std::errc() && result.ptr == end;
}

bool FailAt(std::string* error, size_t line, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + message;
  }
  return false;
}

bool FailPlan(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Splits on `sep`, trimming each element; empty elements are an error the
// caller reports with the line number.
bool SplitList(std::string_view text, char sep,
               std::vector<std::string>* out) {
  out->clear();
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = std::min(text.find(sep, begin), text.size());
    const std::string_view token = Trim(text.substr(begin, end - begin));
    if (token.empty()) return false;
    out->emplace_back(token);
    begin = end + 1;
  }
  return true;
}

std::string JoinList(const std::vector<std::string>& items,
                     const char* sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

const char* RequirementName(ExperimentKind kind) {
  return ExperimentKindName(kind);
}

// ---------------------------------------------------------------------------
// Execution helpers.
// ---------------------------------------------------------------------------

struct EffectiveRun {
  uint32_t scale;
  uint32_t runs;
};

// Quick mode mirrors the legacy harness: scale floors at 20, one run,
// tau capped at 20 (the cap lives in BuildPlanDataset).
EffectiveRun Effective(const ExperimentPlan& plan) {
  EffectiveRun eff{plan.scale, plan.runs};
  if (plan.quick) {
    eff.scale = std::max(eff.scale, 20u);
    eff.runs = 1;
  }
  return eff;
}

[[gnu::format(printf, 2, 3)]]
void Log(std::FILE* log, const char* format, ...) {
  if (log == nullptr) return;
  va_list args;
  va_start(args, format);
  std::vfprintf(log, format, args);
  va_end(args);
  std::fflush(log);
}

ArtifactMeta MetaFor(const ExperimentPlan& plan, std::string table,
                     std::string suffix) {
  ArtifactMeta meta;
  meta.plan_name = plan.name;
  meta.kind = ExperimentKindName(plan.kind);
  meta.table = std::move(table);
  meta.suffix = std::move(suffix);
  meta.seed = plan.seed;
  meta.git_describe = GitDescribe();
  return meta;
}

bool EmitTable(const TextTable& table, const ArtifactMeta& meta,
               std::span<ResultSink* const> sinks, std::string* error,
               std::FILE* log) {
  Log(log, "\n%s\n", table.ToString().c_str());
  for (ResultSink* sink : sinks) {
    if (!sink->Write(table, meta)) {
      return FailPlan(error, "result sink failed writing table '" +
                                 meta.table + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Unit stream: the one counter behind the distributed path.
//
// Every kind runner announces its results through this stream in a fixed
// canonical order — one unit per Monte-Carlo cell for mse plans, one per
// output table row for everything else. The same code path then serves
// three modes:
//   full   (slice off, merge off): compute everything, emit tables.
//   slice  (plan.slice active):    compute owned units only, collect them
//                                  into `owned`, emit no tables.
//   merge  (merged units given):   compute nothing unit-shaped, read the
//                                  values back, emit tables — bytes
//                                  identical to a full run.
// ---------------------------------------------------------------------------

struct UnitStream {
  SliceSpec slice;                    // slice mode when active
  bool merge = false;                 // merge mode when true
  std::span<const SliceUnit> merged;  // dense canonical units (merge mode)
  uint64_t next = 0;                  // global unit counter
  std::vector<SliceUnit> owned;       // slice mode accumulator

  bool emits_tables() const { return !slice.active(); }
};

// One output table row = one distributable unit. `make` is invoked only
// when the current mode needs the row's value (full runs and owned slice
// units); merge mode reads the row back instead.
bool NextRowUnit(UnitStream& stream, TextTable& table,
                 const std::function<std::vector<std::string>()>& make,
                 std::string* error) {
  const uint64_t index = stream.next++;
  if (stream.merge) {
    const SliceUnit& unit = stream.merged[index];
    if (unit.type != SliceUnit::Type::kRow) {
      return FailPlan(error, "unit " + std::to_string(index) +
                                 " is a Monte-Carlo cell, not a table row — "
                                 "slice partials from a different plan?");
    }
    table.AddRow(unit.row);
    return true;
  }
  if (stream.slice.active()) {
    if (stream.slice.Owns(index)) {
      SliceUnit unit;
      unit.index = index;
      unit.type = SliceUnit::Type::kRow;
      unit.row = make();
      stream.owned.push_back(std::move(unit));
    }
    return true;
  }
  table.AddRow(make());
  return true;
}

uint32_t DivisorFor(const ExperimentPlan& plan, size_t dataset_index) {
  if (plan.bucket_divisors.empty()) return 1;
  return plan.bucket_divisors[dataset_index];
}

// dBitFlipPM bucket count for dataset `i`, as a plan error (not a CHECK
// abort) when the plan's divisor is too large for the dataset's domain —
// divisors are user-editable text now, not the old hard-coded table.
bool ResolvePlanBuckets(const ExperimentPlan& plan, size_t i,
                        const Dataset& data, uint32_t* b,
                        std::string* error) {
  const uint32_t divisor = DivisorFor(plan, i);
  *b = data.k() / divisor;
  if (*b < 2) {
    return FailPlan(error, "bucket_divisor " + std::to_string(divisor) +
                               " too large for dataset '" +
                               plan.datasets[i] + "' (k = " +
                               std::to_string(data.k()) + ")");
  }
  return true;
}

// Fig. 3 family: the Monte-Carlo MSE_avg grid over each dataset. The
// (α, ε∞, protocol) grid flattens row-major into one ProtocolSpec per
// Monte-Carlo config — byte-identical to the legacy per-figure mains.
bool RunMse(const ExperimentPlan& plan, ThreadPool* pool, UnitStream& stream,
            std::span<ResultSink* const> sinks, std::string* error,
            std::FILE* log) {
  const EffectiveRun eff = Effective(plan);
  const bool multi = plan.datasets.size() > 1;
  for (const std::string& which : plan.datasets) {
    const Dataset data =
        BuildPlanDataset(which, eff.scale, plan.quick, plan.seed);
    Log(log,
        "%s [mse] %s — MSE_avg (Eq. 7); n=%u (scale 1/%u of paper), k=%u, "
        "tau=%u, runs=%u\n\n",
        plan.name.c_str(), data.name().c_str(), data.n(), eff.scale,
        data.k(), data.tau(), eff.runs);

    RunnerOptions options;
    options.num_threads = plan.threads;
    options.pool = pool;

    // Grid budgets override the legend specs' placeholders, exactly like
    // the --protocols= bench flag.
    std::vector<ProtocolSpec> cells;
    cells.reserve(plan.alpha.size() * plan.eps_perm.size() *
                  plan.protocols.size());
    for (const double alpha : plan.alpha) {
      for (const double eps : plan.eps_perm) {
        for (const ProtocolSpec& base : plan.protocols) {
          ProtocolSpec spec = base;
          spec.eps_perm = eps;
          spec.eps_first = spec.IsTwoRound() ? alpha * eps : 0.0;
          cells.push_back(spec);
        }
      }
    }

    // This dataset's block of the plan's unit grid: one unit per (config,
    // run) cell, local index config * runs + run.
    const uint64_t first_cell = stream.next;
    const uint64_t block = uint64_t{cells.size()} * eff.runs;
    stream.next += block;

    std::vector<std::vector<double>> per_run_mse;
    if (stream.merge) {
      per_run_mse.assign(cells.size(), std::vector<double>(eff.runs, 0.0));
      for (size_t config = 0; config < cells.size(); ++config) {
        for (uint32_t run = 0; run < eff.runs; ++run) {
          const SliceUnit& unit =
              stream.merged[first_cell + config * eff.runs + run];
          if (unit.type != SliceUnit::Type::kCell) {
            return FailPlan(error,
                            "unit " + std::to_string(unit.index) +
                                " is a table row, not a Monte-Carlo cell — "
                                "slice partials from a different plan?");
          }
          per_run_mse[config][run] = unit.cell;
        }
      }
    } else {
      MonteCarloOptions mc;
      mc.runs = eff.runs;
      mc.base_seed = plan.seed;
      mc.pool = pool;
      mc.slice = stream.slice;
      mc.slice_first_cell = first_cell;
      const uint32_t cells_per_dot =
          static_cast<uint32_t>(plan.protocols.size()) * eff.runs;
      if (log != nullptr) {
        mc.progress = [cells_per_dot, log](uint32_t completed, uint32_t) {
          if (completed % cells_per_dot == 0) {
            std::fprintf(log, ".");
            std::fflush(log);
          }
        };
      }
      per_run_mse = RunMonteCarloGrid(
          std::span<const ProtocolSpec>(cells), options, data, mc,
          [&](uint32_t, const RunResult& result) {
            // dBitFlipPM estimates a b-bin histogram; compare it against
            // the bucketized truth (Sec. 5.2), everything else bin for bin.
            return result.bins == data.k()
                       ? MseAvg(data, result.estimates)
                       : MseAvgBucketed(data,
                                        Bucketizer(data.k(), result.bins),
                                        result.estimates);
          });
    }
    Log(log, "\n");

    if (stream.slice.active()) {
      // Collect the owned cells; table assembly happens at merge time.
      for (size_t config = 0; config < cells.size(); ++config) {
        for (uint32_t run = 0; run < eff.runs; ++run) {
          const uint64_t index = first_cell + config * eff.runs + run;
          if (!stream.slice.Owns(index)) continue;
          SliceUnit unit;
          unit.index = index;
          unit.type = SliceUnit::Type::kCell;
          unit.cell = per_run_mse[config][run];
          stream.owned.push_back(std::move(unit));
        }
      }
      continue;
    }

    std::vector<std::string> header = {"alpha", "eps_inf"};
    for (const ProtocolSpec& spec : plan.protocols) {
      header.push_back(spec.DisplayName());
    }
    TextTable table(header);
    size_t cell = 0;
    for (const double alpha : plan.alpha) {
      for (const double eps : plan.eps_perm) {
        std::vector<std::string> row = {FormatDouble(alpha, 2),
                                        FormatDouble(eps, 3)};
        for (size_t p = 0; p < plan.protocols.size(); ++p) {
          // Summed in ascending run order — the same float additions in
          // the same order as a full run, so merged bytes match exactly.
          double sum = 0.0;
          for (const double v : per_run_mse[cell]) sum += v;
          row.push_back(FormatDouble(
              sum / static_cast<double>(per_run_mse[cell].size()), 4));
          ++cell;
        }
        table.AddRow(std::move(row));
      }
    }
    if (!EmitTable(table, MetaFor(plan, which, multi ? "_" + which : ""),
                   sinks, error, log)) {
      return false;
    }
  }
  return true;
}

// Fig. 2: closed-form approximate variance V* (Eq. 5) — no simulation.
bool RunVariance(const ExperimentPlan& plan, UnitStream& stream,
                 std::span<ResultSink* const> sinks, std::string* error,
                 std::FILE* log) {
  std::vector<std::string> header = {"alpha", "eps_inf"};
  for (const ProtocolSpec& spec : plan.protocols) {
    header.push_back(spec.DisplayName());
  }
  TextTable table(header);
  for (const double alpha : plan.alpha) {
    for (const double eps : plan.eps_perm) {
      const auto make = [&] {
        std::vector<std::string> row = {FormatDouble(alpha, 2),
                                        FormatDouble(eps, 3)};
        for (const ProtocolSpec& base : plan.protocols) {
          // V* honors pinned extras (a fixed g, a bucket layout); the grid
          // overrides the budgets, as in the MSE panels.
          ProtocolSpec spec = base;
          spec.eps_perm = eps;
          spec.eps_first = spec.IsTwoRound() ? alpha * eps : 0.0;
          row.push_back(
              FormatDouble(ApproxVarianceForSpec(spec, plan.n, plan.k)));
        }
        return row;
      };
      if (!NextRowUnit(stream, table, make, error)) return false;
    }
  }
  if (!stream.emits_tables()) return true;
  Log(log, "%s [variance] — approximate variance V* (Eq. 5), n=%.0f\n",
      plan.name.c_str(), plan.n);
  return EmitTable(table, MetaFor(plan, plan.name, ""), sinks, error, log);
}

// Fig. 1: optimal hash range g (Eq. 6) per (ε∞, α), cross-checked
// against the brute-force argmin of V*.
bool RunOptimalG(const ExperimentPlan& plan, UnitStream& stream,
                 std::span<ResultSink* const> sinks, std::string* error,
                 std::FILE* log) {
  std::vector<std::string> header = {"eps_inf"};
  for (const double alpha : plan.alpha) {
    header.push_back("alpha=" + FormatDouble(alpha, 2));
  }
  header.push_back("bruteforce_mismatches");
  TextTable table(header);
  for (const double eps : plan.eps_perm) {
    const auto make = [&] {
      std::vector<std::string> row = {FormatDouble(eps, 3)};
      int mismatches = 0;
      for (const double alpha : plan.alpha) {
        const uint32_t g = OptimalLolohaG(eps, alpha * eps);
        const uint32_t g_bf = BruteForceOptimalG(eps, alpha * eps, 1e4);
        if (g != g_bf) ++mismatches;
        row.push_back(std::to_string(g));
      }
      row.push_back(std::to_string(mismatches));
      return row;
    };
    if (!NextRowUnit(stream, table, make, error)) return false;
  }
  if (!stream.emits_tables()) return true;
  Log(log, "%s [optimal_g] — optimal g (Eq. 6) per (eps_inf, alpha)\n",
      plan.name.c_str());
  return EmitTable(table, MetaFor(plan, plan.name, ""), sinks, error, log);
}

// Fig. 4: averaged empirical longitudinal privacy loss ε̌_avg (Eq. 8)
// via the dedicated accountant (integration tests pin it to full runs).
bool RunPrivacyLoss(const ExperimentPlan& plan, UnitStream& stream,
                    std::span<ResultSink* const> sinks, std::string* error,
                    std::FILE* log) {
  const EffectiveRun eff = Effective(plan);
  TextTable table({"dataset", "alpha", "eps_inf", "RAPPOR/L-OSUE/L-GRR",
                   "bBitFlipPM", "1BitFlipPM", "OLOLOHA", "BiLOLOHA"});
  for (size_t i = 0; i < plan.datasets.size(); ++i) {
    const Dataset data =
        BuildPlanDataset(plan.datasets[i], eff.scale, plan.quick, plan.seed);
    uint32_t b = 0;
    if (!ResolvePlanBuckets(plan, i, data, &b, error)) return false;
    Log(log, "%s: n=%u k=%u tau=%u b=%u (avg %.1f distinct values/user)\n",
        data.name().c_str(), data.n(), data.k(), data.tau(), b,
        data.MeanDistinctValuesPerUser());
    for (const double alpha : plan.alpha) {
      for (const double eps : plan.eps_perm) {
        const auto make = [&]() -> std::vector<std::string> {
          const double value_memo = EpsAvg(ValueMemoEpsilons(data, eps));
          const double b_bit =
              EpsAvg(DBitFlipEpsilons(data, b, b, eps, plan.seed + 1));
          const double one_bit =
              EpsAvg(DBitFlipEpsilons(data, b, 1, eps, plan.seed + 2));
          const uint32_t g_opt = OptimalLolohaG(eps, alpha * eps);
          const double ololoha =
              EpsAvg(LolohaEpsilons(data, g_opt, eps, plan.seed + 3));
          const double biloloha =
              EpsAvg(LolohaEpsilons(data, 2, eps, plan.seed + 4));
          return {data.name(), FormatDouble(alpha, 2),
                  FormatDouble(eps, 3), FormatDouble(value_memo, 5),
                  FormatDouble(b_bit, 5), FormatDouble(one_bit, 5),
                  FormatDouble(ololoha, 5), FormatDouble(biloloha, 5)};
        };
        if (!NextRowUnit(stream, table, make, error)) return false;
      }
    }
  }
  if (!stream.emits_tables()) return true;
  Log(log,
      "\n%s [privacy_loss] — averaged longitudinal privacy loss (Eq. 8)\n",
      plan.name.c_str());
  return EmitTable(table, MetaFor(plan, plan.name, ""), sinks, error, log);
}

// Table 1: theoretical comparison, instantiated at the plan's (k, b,
// eps, eps1) point.
bool RunComparison(const ExperimentPlan& plan, UnitStream& stream,
                   std::span<ResultSink* const> sinks, std::string* error,
                   std::FILE* log) {
  const uint32_t k = plan.k;
  const uint32_t b = plan.b == 0 ? k : plan.b;
  const double eps = plan.eps;
  const double eps1 = plan.eps1 == 0.0 ? 0.5 * eps : plan.eps1;

  TextTable table({"protocol", "comm bits/report", "server run-time",
                   "privacy budget (symbolic)",
                   "budget at eps_inf=" + FormatDouble(eps, 3)});
  struct Row {
    ProtocolId id;
    const char* symbolic;
  };
  const Row rows[] = {
      {ProtocolId::kBiLoloha, "g eps_inf (g = 2)"},
      {ProtocolId::kOLoloha, "g eps_inf (g = Eq. 6)"},
      {ProtocolId::kLGrr, "k eps_inf"},
      {ProtocolId::kRappor, "k eps_inf"},
      {ProtocolId::kLOsue, "k eps_inf"},
      {ProtocolId::kOneBitFlipPm, "min(d+1, b) eps_inf (d = 1)"},
      {ProtocolId::kBBitFlipPm, "min(d+1, b) eps_inf (d = b)"},
  };
  for (const Row& row : rows) {
    const auto make = [&]() -> std::vector<std::string> {
      const ProtocolCharacteristics c =
          Characteristics(row.id, k, b, 1, eps, eps1);
      return {c.name, FormatDouble(c.comm_bits_per_report, 6),
              c.server_runtime, row.symbolic,
              FormatDouble(c.worst_case_budget, 6)};
    };
    if (!NextRowUnit(stream, table, make, error)) return false;
  }
  if (!stream.emits_tables()) return true;
  Log(log,
      "%s [comparison] — theoretical comparison (k=%u, b=%u, eps_inf=%g, "
      "eps1=%g); OLOLOHA resolved g = %u\n",
      plan.name.c_str(), k, b, eps, eps1, OptimalLolohaG(eps, eps1));
  return EmitTable(table, MetaFor(plan, plan.name, ""), sinks, error, log);
}

// Table 2: dBitFlipPM bucket-change detection attack, d in {1, b}.
bool RunDetection(const ExperimentPlan& plan, UnitStream& stream,
                  std::span<ResultSink* const> sinks, std::string* error,
                  std::FILE* log) {
  const EffectiveRun eff = Effective(plan);
  std::vector<Dataset> datasets;
  std::vector<uint32_t> buckets;
  for (size_t i = 0; i < plan.datasets.size(); ++i) {
    datasets.push_back(
        BuildPlanDataset(plan.datasets[i], eff.scale, plan.quick, plan.seed));
    uint32_t b = 0;
    if (!ResolvePlanBuckets(plan, i, datasets.back(), &b, error)) {
      return false;
    }
    buckets.push_back(b);
    Log(log, "%s: n=%u k=%u tau=%u b=%u\n", datasets.back().name().c_str(),
        datasets.back().n(), datasets.back().k(), datasets.back().tau(),
        buckets.back());
  }

  std::vector<std::string> header = {"eps_inf"};
  for (const uint32_t d_is_b : {0u, 1u}) {
    for (const Dataset& data : datasets) {
      header.push_back((d_is_b ? "d=b " : "d=1 ") + data.name());
    }
  }
  TextTable table(header);
  for (const double eps : plan.eps_perm) {
    const auto make = [&] {
      std::vector<std::string> row = {FormatDouble(eps, 3)};
      for (const uint32_t d_is_b : {0u, 1u}) {
        for (size_t i = 0; i < datasets.size(); ++i) {
          const uint32_t b = buckets[i];
          const uint32_t d = d_is_b ? b : 1u;
          const DetectionResult result = DBitFlipDetection(
              datasets[i], b, d, eps, plan.seed + 31 * i + d);
          row.push_back(FormatDouble(result.PercentFullyDetected(), 4) + "%");
        }
      }
      return row;
    };
    if (!NextRowUnit(stream, table, make, error)) return false;
    Log(log, ".");
  }
  if (!stream.emits_tables()) {
    Log(log, "\n");
    return true;
  }
  Log(log,
      "\n\n%s [detection] — %% of users with ALL bucket changes detected "
      "(dBitFlipPM)\n",
      plan.name.c_str());
  return EmitTable(table, MetaFor(plan, plan.name, ""), sinks, error, log);
}

// ---------------------------------------------------------------------------
// Sink helpers.
// ---------------------------------------------------------------------------

// "<stem><suffix><ext>" for multi-table plans; `path` untouched otherwise.
std::string SuffixedPath(const std::string& path,
                         const std::string& suffix) {
  if (suffix.empty()) return path;
  const std::filesystem::path p(path);
  std::filesystem::path out = p.parent_path();
  out /= p.stem().string() + suffix + p.extension().string();
  return out.string();
}

void EnsureParentDirectory(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort
  }
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << bytes;
  return static_cast<bool>(out);
}

}  // namespace

const char* ExperimentKindName(ExperimentKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  LOLOHA_CHECK_MSG(false, "unknown experiment kind");
  return "?";
}

bool ExperimentKindFromName(std::string_view name, ExperimentKind* kind) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

bool ExperimentPlan::Validate(std::string* error) const {
  if (name.empty()) return FailPlan(error, "plan has no name");
  for (const std::string& dataset : datasets) {
    if (!IsKnownDataset(dataset)) {
      return FailPlan(error, "unknown dataset '" + dataset + "'");
    }
  }
  if (!bucket_divisors.empty() &&
      bucket_divisors.size() != datasets.size()) {
    return FailPlan(error,
                    "bucket_divisors must be empty or match datasets "
                    "element for element");
  }
  for (const uint32_t divisor : bucket_divisors) {
    if (divisor < 1) return FailPlan(error, "bucket divisors must be >= 1");
  }
  for (const ProtocolSpec& spec : protocols) {
    std::string spec_error;
    if (!spec.Validate(&spec_error)) {
      return FailPlan(error, "protocol '" + spec.ToString() +
                                 "': " + spec_error);
    }
  }
  for (const double e : eps_perm) {
    if (!std::isfinite(e) || e <= 0.0) {
      return FailPlan(error, "eps_perm grid values must be positive");
    }
  }
  for (const double a : alpha) {
    if (!std::isfinite(a) || a <= 0.0 || a >= 1.0) {
      return FailPlan(error, "alpha grid values must be in (0, 1)");
    }
  }
  if (runs < 1) return FailPlan(error, "runs must be >= 1");
  if (scale < 1) return FailPlan(error, "scale must be >= 1");
  if (threads > 4096) {
    return FailPlan(error, "threads must be in [0, 4096] (0 = hardware)");
  }
  if (slice.active() && slice.index >= slice.count) {
    return FailPlan(error, "slice index " + std::to_string(slice.index) +
                               " out of range for count " +
                               std::to_string(slice.count));
  }

  const bool needs_datasets = kind == ExperimentKind::kMse ||
                              kind == ExperimentKind::kPrivacyLoss ||
                              kind == ExperimentKind::kDetection;
  const bool needs_protocols =
      kind == ExperimentKind::kMse || kind == ExperimentKind::kVariance;
  const bool needs_alpha = kind != ExperimentKind::kComparison &&
                           kind != ExperimentKind::kDetection;
  const bool needs_eps_grid = kind != ExperimentKind::kComparison;
  if (needs_datasets && datasets.empty()) {
    return FailPlan(error, std::string(RequirementName(kind)) +
                               " plans need at least one dataset");
  }
  if (needs_protocols && protocols.empty()) {
    return FailPlan(error, std::string(RequirementName(kind)) +
                               " plans need at least one protocol");
  }
  if (needs_eps_grid && eps_perm.empty()) {
    return FailPlan(error, std::string(RequirementName(kind)) +
                               " plans need an eps_perm grid");
  }
  if (needs_alpha && alpha.empty()) {
    return FailPlan(error, std::string(RequirementName(kind)) +
                               " plans need an alpha grid");
  }

  if (!std::isfinite(n) || n <= 0.0) {
    return FailPlan(error, "n must be a positive finite number");
  }
  if (k < 2) return FailPlan(error, "k must be >= 2");
  if (b != 0 && (b < 2 || b > k)) {
    return FailPlan(error, "b must be 0 (= k) or in [2, k]");
  }
  if (!std::isfinite(eps) || eps <= 0.0) {
    return FailPlan(error, "eps must be a positive finite number");
  }
  if (eps1 != 0.0 &&
      (!std::isfinite(eps1) || eps1 <= 0.0 || eps1 >= eps)) {
    return FailPlan(error, "eps1 must be 0 (= eps/2) or in (0, eps)");
  }
  return true;
}

bool ParseExperimentPlan(std::string_view text, ExperimentPlan* plan,
                         std::string* error) {
  ExperimentPlan out;
  // Every assigned value is validated at its line; the cross-field
  // Validate pass below catches structural problems (missing sections).
  enum Section { kNone, kExperiment, kGrid, kRun, kOutput };
  Section section = kNone;
  std::vector<std::string> seen;  // "section.key" duplicates

  size_t line_number = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = std::min(text.find('\n', begin), text.size());
    const std::string_view raw = text.substr(begin, end - begin);
    begin = end + 1;
    ++line_number;

    // Comments are whole lines only ('#' as the first non-space char); a
    // mid-line '#' stays literal so values — output paths in particular —
    // may contain one, and the ToString round-trip stays exact.
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return FailAt(error, line_number, "unterminated section header '" +
                                              std::string(line) + "'");
      }
      const std::string_view name = Trim(line.substr(1, line.size() - 2));
      if (name == "experiment") {
        section = kExperiment;
      } else if (name == "grid") {
        section = kGrid;
      } else if (name == "run") {
        section = kRun;
      } else if (name == "output") {
        section = kOutput;
      } else {
        return FailAt(error, line_number,
                      "unknown section '[" + std::string(name) + "]'");
      }
      continue;
    }

    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return FailAt(error, line_number, "expected 'key = value', got '" +
                                            std::string(line) + "'");
    }
    const std::string key{Trim(line.substr(0, eq))};
    const std::string_view value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return FailAt(error, line_number, "empty key before '='");
    }
    if (value.empty()) {
      return FailAt(error, line_number, "empty value for key '" + key + "'");
    }
    if (section == kNone) {
      return FailAt(error, line_number,
                    "key '" + key + "' outside any [section]");
    }

    const std::string section_names[] = {"", "experiment", "grid", "run",
                                         "output"};
    const std::string qualified = section_names[section] + "." + key;
    if (std::find(seen.begin(), seen.end(), qualified) != seen.end()) {
      return FailAt(error, line_number, "duplicate key '" + key + "' in [" +
                                            section_names[section] + "]");
    }
    seen.push_back(qualified);

    auto bad_value = [&](const char* what) {
      return FailAt(error, line_number, "malformed " + std::string(what) +
                                            " for '" + key + "': '" +
                                            std::string(value) + "'");
    };

    switch (section) {
      case kExperiment: {
        if (key == "name") {
          out.name = std::string(value);
        } else if (key == "kind") {
          if (!ExperimentKindFromName(value, &out.kind)) {
            return FailAt(error, line_number, "unknown experiment kind '" +
                                                  std::string(value) + "'");
          }
        } else if (key == "datasets") {
          if (!SplitList(value, ',', &out.datasets)) {
            return bad_value("dataset list");
          }
          for (const std::string& dataset : out.datasets) {
            if (!IsKnownDataset(dataset)) {
              return FailAt(error, line_number, "unknown dataset '" +
                                                    dataset + "'");
            }
          }
        } else if (key == "bucket_divisors") {
          std::vector<std::string> tokens;
          if (!SplitList(value, ',', &tokens)) {
            return bad_value("bucket_divisors list");
          }
          out.bucket_divisors.clear();
          for (const std::string& token : tokens) {
            uint32_t divisor = 0;
            if (!ParseUIntValue(token, &divisor) || divisor < 1) {
              return FailAt(error, line_number,
                            "bucket divisor '" + token +
                                "' is not a positive integer");
            }
            out.bucket_divisors.push_back(divisor);
          }
        } else if (key == "protocols") {
          std::vector<std::string> tokens;
          if (!SplitList(value, ';', &tokens)) {
            return bad_value("protocol list");
          }
          out.protocols.clear();
          for (const std::string& token : tokens) {
            ProtocolSpec spec;
            std::string spec_error;
            if (!ProtocolSpec::Parse(token, &spec, &spec_error)) {
              return FailAt(error, line_number, "bad protocol spec '" +
                                                    token + "': " +
                                                    spec_error);
            }
            out.protocols.push_back(spec);
          }
        } else if (key == "n") {
          if (!ParseDoubleValue(value, &out.n)) return bad_value("number");
          if (!std::isfinite(out.n) || out.n <= 0.0) {
            return FailAt(error, line_number, "n must be positive");
          }
        } else if (key == "k") {
          if (!ParseUIntValue(value, &out.k)) return bad_value("integer");
          if (out.k < 2) {
            return FailAt(error, line_number, "k must be >= 2");
          }
        } else if (key == "b") {
          if (!ParseUIntValue(value, &out.b)) return bad_value("integer");
          // Line-local range check; the b <= k cross-check stays in
          // Validate (k may be set on a later line).
          if (out.b == 1) {
            return FailAt(error, line_number, "b must be 0 (= k) or >= 2");
          }
        } else if (key == "eps") {
          if (!ParseDoubleValue(value, &out.eps)) return bad_value("number");
          if (!std::isfinite(out.eps) || out.eps <= 0.0) {
            return FailAt(error, line_number, "eps must be positive");
          }
        } else if (key == "eps1") {
          if (!ParseDoubleValue(value, &out.eps1)) {
            return bad_value("number");
          }
          // Line-local range check; the eps1 < eps cross-check stays in
          // Validate (eps may be set on a later line).
          if (!std::isfinite(out.eps1) || out.eps1 < 0.0) {
            return FailAt(error, line_number,
                          "eps1 must be a finite number >= 0 (0 = eps/2)");
          }
        } else {
          return FailAt(error, line_number,
                        "unknown key '" + key + "' in [experiment]");
        }
        break;
      }
      case kGrid: {
        std::vector<double>* grid = nullptr;
        if (key == "eps_perm") {
          grid = &out.eps_perm;
        } else if (key == "alpha") {
          grid = &out.alpha;
        } else {
          return FailAt(error, line_number,
                        "unknown key '" + key + "' in [grid]");
        }
        std::vector<std::string> tokens;
        if (!SplitList(value, ',', &tokens)) return bad_value("list");
        grid->clear();
        for (const std::string& token : tokens) {
          double v = 0.0;
          if (!ParseDoubleValue(token, &v)) {
            return FailAt(error, line_number, "malformed number '" + token +
                                                  "' in '" + key + "'");
          }
          if (key == "eps_perm" && (!std::isfinite(v) || v <= 0.0)) {
            return FailAt(error, line_number,
                          "eps_perm values must be positive, got '" +
                              token + "'");
          }
          if (key == "alpha" && (!std::isfinite(v) || v <= 0.0 || v >= 1.0)) {
            return FailAt(error, line_number,
                          "alpha values must be in (0, 1), got '" + token +
                              "'");
          }
          grid->push_back(v);
        }
        break;
      }
      case kRun: {
        if (key == "runs") {
          if (!ParseUIntValue(value, &out.runs)) return bad_value("integer");
          if (out.runs < 1) {
            return FailAt(error, line_number, "runs must be >= 1");
          }
        } else if (key == "threads") {
          if (!ParseUIntValue(value, &out.threads)) {
            return bad_value("integer");
          }
          if (out.threads > 4096) {
            return FailAt(error, line_number,
                          "threads must be in [0, 4096] (0 = hardware)");
          }
        } else if (key == "scale") {
          if (!ParseUIntValue(value, &out.scale)) {
            return bad_value("integer");
          }
          if (out.scale < 1) {
            return FailAt(error, line_number, "scale must be >= 1");
          }
        } else if (key == "seed") {
          if (!ParseUIntValue(value, &out.seed)) return bad_value("integer");
        } else if (key == "quick") {
          if (value == "true") {
            out.quick = true;
          } else if (value == "false") {
            out.quick = false;
          } else {
            return FailAt(error, line_number,
                          "quick must be 'true' or 'false', got '" +
                              std::string(value) + "'");
          }
        } else if (key == "slice") {
          std::string slice_error;
          if (!ParseSliceSpec(value, &out.slice, &slice_error)) {
            return FailAt(error, line_number, slice_error);
          }
        } else {
          return FailAt(error, line_number,
                        "unknown key '" + key + "' in [run]");
        }
        break;
      }
      case kOutput: {
        if (key == "csv") {
          out.csv = std::string(value);
        } else if (key == "json") {
          out.json = std::string(value);
        } else {
          return FailAt(error, line_number,
                        "unknown key '" + key + "' in [output]");
        }
        break;
      }
      case kNone:
        break;  // unreachable: handled above
    }
  }

  if (!out.Validate(error)) return false;
  *plan = out;
  return true;
}

bool LoadExperimentPlan(const std::string& path, ExperimentPlan* plan,
                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return FailPlan(error, path + ": cannot open plan file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  if (!ParseExperimentPlan(buffer.str(), plan, &parse_error)) {
    return FailPlan(error, path + ": " + parse_error);
  }
  return true;
}

std::string ExperimentPlan::ToString() const {
  std::string out = "[experiment]\n";
  out += "name = " + name + "\n";
  out += "kind = " + std::string(ExperimentKindName(kind)) + "\n";
  if (!datasets.empty()) {
    out += "datasets = " + JoinList(datasets, ", ") + "\n";
  }
  if (!bucket_divisors.empty()) {
    std::vector<std::string> tokens;
    for (const uint32_t divisor : bucket_divisors) {
      tokens.push_back(std::to_string(divisor));
    }
    out += "bucket_divisors = " + JoinList(tokens, ", ") + "\n";
  }
  if (!protocols.empty()) {
    std::vector<std::string> tokens;
    for (const ProtocolSpec& spec : protocols) {
      tokens.push_back(spec.ToString());
    }
    out += "protocols = " + JoinList(tokens, "; ") + "\n";
  }
  out += "n = " + FormatShortest(n) + "\n";
  out += "k = " + std::to_string(k) + "\n";
  out += "b = " + std::to_string(b) + "\n";
  out += "eps = " + FormatShortest(eps) + "\n";
  out += "eps1 = " + FormatShortest(eps1) + "\n";

  out += "\n[grid]\n";
  if (!eps_perm.empty()) {
    std::vector<std::string> tokens;
    for (const double v : eps_perm) tokens.push_back(FormatShortest(v));
    out += "eps_perm = " + JoinList(tokens, ", ") + "\n";
  }
  if (!alpha.empty()) {
    std::vector<std::string> tokens;
    for (const double v : alpha) tokens.push_back(FormatShortest(v));
    out += "alpha = " + JoinList(tokens, ", ") + "\n";
  }

  out += "\n[run]\n";
  out += "runs = " + std::to_string(runs) + "\n";
  out += "threads = " + std::to_string(threads) + "\n";
  out += "scale = " + std::to_string(scale) + "\n";
  out += "seed = " + std::to_string(seed) + "\n";
  out += "quick = " + std::string(quick ? "true" : "false") + "\n";
  if (slice.active()) {
    out += "slice = " + std::to_string(slice.index) + "/" +
           std::to_string(slice.count) + "\n";
  }

  out += "\n[output]\n";
  if (!csv.empty()) out += "csv = " + csv + "\n";
  if (!json.empty()) out += "json = " + json + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

std::string GitDescribe() { return LOLOHA_GIT_DESCRIBE; }

std::string ProvenanceJsonBody(const ArtifactMeta& meta) {
  std::string out = "{\"plan\": \"" + JsonEscape(meta.plan_name) +
                    "\", \"kind\": \"" + JsonEscape(meta.kind) +
                    "\", \"table\": \"" + JsonEscape(meta.table) +
                    "\", \"seed\": " + std::to_string(meta.seed) +
                    ", \"git\": \"" + JsonEscape(meta.git_describe) + "\"";
  if (meta.slice.active()) {
    // Slice stamps only on partial artifacts: ordinary sidecars keep the
    // exact pre-slice bytes, which is what makes merged output
    // byte-identical to a single-process run.
    out += ", \"slice_index\": " + std::to_string(meta.slice.index) +
           ", \"slice_count\": " + std::to_string(meta.slice.count) +
           ", \"units\": " + std::to_string(meta.units) +
           ", \"units_total\": " + std::to_string(meta.units_total) +
           ", \"plan_text\": \"" + JsonEscape(meta.plan_text) + "\"";
  }
  return out;  // caller closes the object (or extends it)
}

std::string SlicePartialPath(const std::string& path,
                             const SliceSpec& slice) {
  const std::filesystem::path p(path);
  std::filesystem::path out = p.parent_path();
  out /= p.stem().string() + ".slice-" + SliceSpecToken(slice) +
         p.extension().string();
  return out.string();
}

bool ResultSink::WritePartial(const SlicePartial&, const ArtifactMeta&) {
  return false;  // base sinks cannot represent partials; fail loudly
}

CsvSink::CsvSink(std::string path) : path_(std::move(path)) {}

bool CsvSink::Write(const TextTable& table, const ArtifactMeta& meta) {
  const std::string path = SuffixedPath(path_, meta.suffix);
  EnsureParentDirectory(path);
  // The CSV bytes are exactly TextTable::WriteCsv — the legacy mains'
  // output — so plan-driven artifacts stay byte-comparable. Provenance
  // goes in the sidecar instead of a CSV comment for the same reason.
  if (!table.WriteCsv(path)) return false;
  return WriteFileBytes(path + ".meta.json",
                        ProvenanceJsonBody(meta) + "}\n");
}

bool CsvSink::WritePartial(const SlicePartial& partial,
                           const ArtifactMeta& meta) {
  const std::string path = SlicePartialPath(path_, partial.slice);
  EnsureParentDirectory(path);
  if (!WriteFileBytes(path, SlicePartialCsv(partial))) return false;
  return WriteFileBytes(path + ".meta.json",
                        ProvenanceJsonBody(meta) + "}\n");
}

JsonSink::JsonSink(std::string path) : path_(std::move(path)) {}

bool JsonSink::WritePartial(const SlicePartial& partial,
                            const ArtifactMeta& meta) {
  const std::string path = SlicePartialPath(path_, partial.slice);
  EnsureParentDirectory(path);
  std::string out = ProvenanceJsonBody(meta);
  AppendSlicePartialDataJson(partial, &out);
  out += "}\n";
  return WriteFileBytes(path, out);
}

bool JsonSink::Write(const TextTable& table, const ArtifactMeta& meta) {
  const std::string path = SuffixedPath(path_, meta.suffix);
  EnsureParentDirectory(path);
  // Appended piecewise (not via operator+ chains of char literals): GCC
  // 12's -Wrestrict false-positives on those under -O3 (PR 105329).
  std::string out = ProvenanceJsonBody(meta);
  out += ", \"header\": [";
  for (size_t i = 0; i < table.header().size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += JsonEscape(table.header()[i]);
    out += '"';
  }
  out += "], \"rows\": [";
  for (size_t r = 0; r < table.rows().size(); ++r) {
    if (r > 0) out += ", ";
    out += '[';
    const std::vector<std::string>& row = table.rows()[r];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ", ";
      out += '"';
      out += JsonEscape(row[c]);
      out += '"';
    }
    out += ']';
  }
  out += "]}\n";
  return WriteFileBytes(path, out);
}

std::vector<std::unique_ptr<ResultSink>> MakePlanSinks(
    const ExperimentPlan& plan) {
  std::vector<std::unique_ptr<ResultSink>> sinks;
  if (!plan.csv.empty()) sinks.push_back(std::make_unique<CsvSink>(plan.csv));
  if (!plan.json.empty()) {
    sinks.push_back(std::make_unique<JsonSink>(plan.json));
  }
  return sinks;
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

Dataset BuildPlanDataset(const std::string& which, uint32_t scale, bool quick,
                         uint64_t seed) {
  LOLOHA_CHECK(scale >= 1);
  auto scaled = [scale](uint32_t n) { return std::max(n / scale, 50u); };
  const uint32_t tau_cap = quick ? 20u : 0xffffffffu;
  if (which == "syn") {
    return GenerateSyn(scaled(10000), 360, std::min(120u, tau_cap), 0.25,
                       seed);
  }
  if (which == "adult") {
    return GenerateAdultLike(scaled(45222), std::min(260u, tau_cap), seed);
  }
  if (which == "db_mt") {
    return GenerateReplicateWeights("DB_MT", scaled(10336),
                                    std::min(80u, tau_cap), 0.06, 3, seed);
  }
  if (which == "db_de") {
    return GenerateReplicateWeights("DB_DE", scaled(9123),
                                    std::min(80u, tau_cap), 0.055, 4, seed);
  }
  LOLOHA_CHECK_MSG(false, "unknown dataset name");
  return GenerateSynPaper(seed);
}

ExperimentPlan SliceFingerprintPlan(const ExperimentPlan& plan) {
  ExperimentPlan fingerprint = plan;
  // Execution-only knobs that never change any emitted byte: thread
  // count (the determinism contract) and the slice assignment itself.
  fingerprint.threads = 1;
  fingerprint.slice = SliceSpec{};
  return fingerprint;
}

uint64_t CountPlanUnits(const ExperimentPlan& plan) {
  const EffectiveRun eff = Effective(plan);
  const uint64_t grid = uint64_t{plan.alpha.size()} * plan.eps_perm.size();
  switch (plan.kind) {
    case ExperimentKind::kMse:
      return uint64_t{plan.datasets.size()} * grid * plan.protocols.size() *
             eff.runs;
    case ExperimentKind::kVariance:
      return grid;
    case ExperimentKind::kOptimalG:
      return plan.eps_perm.size();
    case ExperimentKind::kPrivacyLoss:
      return uint64_t{plan.datasets.size()} * grid;
    case ExperimentKind::kComparison:
      return 7;  // one row per protocol in the Table 1 legend
    case ExperimentKind::kDetection:
      return plan.eps_perm.size();
  }
  return 0;
}

namespace {

bool DispatchPlan(const ExperimentPlan& plan, ThreadPool* pool,
                  UnitStream& stream, std::span<ResultSink* const> sinks,
                  std::string* error, std::FILE* log) {
  switch (plan.kind) {
    case ExperimentKind::kMse:
      return RunMse(plan, pool, stream, sinks, error, log);
    case ExperimentKind::kVariance:
      return RunVariance(plan, stream, sinks, error, log);
    case ExperimentKind::kOptimalG:
      return RunOptimalG(plan, stream, sinks, error, log);
    case ExperimentKind::kPrivacyLoss:
      return RunPrivacyLoss(plan, stream, sinks, error, log);
    case ExperimentKind::kComparison:
      return RunComparison(plan, stream, sinks, error, log);
    case ExperimentKind::kDetection:
      return RunDetection(plan, stream, sinks, error, log);
  }
  return FailPlan(error, "unknown experiment kind");
}

}  // namespace

bool RunExperimentPlan(const ExperimentPlan& plan, ThreadPool* pool,
                       std::span<ResultSink* const> sinks,
                       std::string* error, std::FILE* log) {
  std::string validate_error;
  if (!plan.Validate(&validate_error)) {
    return FailPlan(error, "plan '" + plan.name + "': " + validate_error);
  }
  UnitStream stream;
  stream.slice = plan.slice;
  if (!DispatchPlan(plan, pool, stream, sinks, error, log)) return false;
  if (!plan.slice.active()) return true;

  // Sliced run: everything computed goes out as one partial per sink.
  SlicePartial partial;
  partial.plan_name = plan.name;
  partial.kind = ExperimentKindName(plan.kind);
  partial.seed = plan.seed;
  partial.git_describe = GitDescribe();
  partial.slice = plan.slice;
  partial.units_total = stream.next;
  partial.plan_text = SliceFingerprintPlan(plan).ToString();
  partial.units = std::move(stream.owned);

  ArtifactMeta meta = MetaFor(plan, plan.name, "");
  meta.slice = plan.slice;
  meta.units = partial.units.size();
  meta.units_total = partial.units_total;
  meta.plan_text = partial.plan_text;

  Log(log, "slice %s: computed %llu of %llu unit(s)\n",
      SliceSpecToken(plan.slice).c_str(),
      static_cast<unsigned long long>(partial.units.size()),
      static_cast<unsigned long long>(partial.units_total));
  for (ResultSink* sink : sinks) {
    if (!sink->WritePartial(partial, meta)) {
      return FailPlan(error,
                      "result sink failed writing the slice partial for '" +
                          plan.name + "'");
    }
  }
  return true;
}

bool MergeExperimentSlices(const ExperimentPlan& plan,
                           std::span<const SliceUnit> units,
                           std::span<ResultSink* const> sinks,
                           std::string* error, std::FILE* log) {
  std::string validate_error;
  if (!plan.Validate(&validate_error)) {
    return FailPlan(error, "plan '" + plan.name + "': " + validate_error);
  }
  if (plan.slice.active()) {
    return FailPlan(error,
                    "merge runs the whole plan; clear the slice first");
  }
  const uint64_t expected = CountPlanUnits(plan);
  if (units.size() != expected) {
    return FailPlan(error, "plan '" + plan.name + "' produces " +
                               std::to_string(expected) +
                               " unit(s) but the combined slices carry " +
                               std::to_string(units.size()));
  }
  UnitStream stream;
  stream.merge = true;
  stream.merged = units;
  if (!DispatchPlan(plan, /*pool=*/nullptr, stream, sinks, error, log)) {
    return false;
  }
  LOLOHA_CHECK(stream.next == units.size());
  return true;
}

bool RunExperimentPlan(const ExperimentPlan& plan, ThreadPool* pool,
                       std::string* error, std::FILE* log) {
  const std::vector<std::unique_ptr<ResultSink>> sinks = MakePlanSinks(plan);
  std::vector<ResultSink*> borrowed;
  borrowed.reserve(sinks.size());
  for (const std::unique_ptr<ResultSink>& sink : sinks) {
    borrowed.push_back(sink.get());
  }
  return RunExperimentPlan(plan, pool, borrowed, error, log);
}

void PrintProtocolRegistry(std::FILE* out) {
  // One row per registry id, straight from protocol_spec.cc. The V*
  // column demonstrates formula availability by evaluating
  // ApproxVarianceForSpec at the paper's Syn reference point.
  TextTable table({"name", "display", "aliases", "extras", "rounds",
                   "V* @ n=1e4,k=360,eps=1,eps1=0.5"});
  for (const ProtocolSpecName& entry : ProtocolSpecRegistry()) {
    ProtocolSpec spec;
    spec.id = entry.id;
    spec = spec.Canonicalized();
    std::string aliases;
    for (const ProtocolSpecAlias& alias : ProtocolSpecAliasRegistry()) {
      if (alias.id == entry.id) {
        if (!aliases.empty()) aliases += ", ";
        aliases += alias.alias;
      }
    }
    // push_back, not `= "-"`: gcc 12 -O2 inlines the char* assign into a
    // memcpy it then (wrongly) flags under -Werror=restrict.
    if (aliases.empty()) aliases.push_back('-');
    const std::string extras = spec.IsLolohaVariant()
                                   ? "g"
                                   : (spec.IsDBitFlipVariant()
                                          ? "d, buckets, bucket_divisor"
                                          : "-");
    table.AddRow({entry.name, spec.DisplayName(), aliases, extras,
                  spec.IsTwoRound() ? "2 (PRR+IRR)" : "1",
                  FormatDouble(ApproxVarianceForSpec(spec, 1e4, 360))});
  }
  std::fprintf(out, "%s", table.ToString().c_str());
  std::fprintf(
      out,
      "\nSpec grammar: name[:key=value,...] with keys eps_perm, eps_first "
      "(two-round only)\nand the extras above; \"loloha:g=N\" selects "
      "BiLOLOHA (N = 2) or LOLOHA(g=N).\n");
}

void PrintPlanRegistry(const std::string& dir, std::FILE* out) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".plan") {
      paths.push_back(it->path().string());
    }
  }
  if (ec) {
    std::fprintf(out, "cannot list plan directory '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    return;
  }
  // Directory order is filesystem-dependent; sort for a stable table.
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(out, "no *.plan files under '%s'\n", dir.c_str());
    return;
  }

  TextTable table({"file", "name", "kind", "datasets", "legend",
                   "grid (alpha x eps)", "runs", "units", "outputs"});
  std::vector<std::string> errors;
  for (const std::string& path : paths) {
    const std::string file =
        std::filesystem::path(path).filename().string();
    ExperimentPlan plan;
    std::string error;
    if (!LoadExperimentPlan(path, &plan, &error)) {
      table.AddRow({file, "(invalid)", "-", "-", "-", "-", "-", "-", "-"});
      errors.push_back(error);
      continue;
    }
    std::string outputs;
    if (!plan.csv.empty()) outputs = plan.csv;
    if (!plan.json.empty()) {
      if (!outputs.empty()) outputs += ", ";
      outputs += plan.json;
    }
    if (outputs.empty()) outputs = "-";
    table.AddRow({file, plan.name, ExperimentKindName(plan.kind),
                  plan.datasets.empty() ? "-" : JoinList(plan.datasets, ","),
                  std::to_string(plan.protocols.size()),
                  std::to_string(plan.alpha.size()) + " x " +
                      std::to_string(plan.eps_perm.size()),
                  std::to_string(Effective(plan).runs),
                  std::to_string(CountPlanUnits(plan)), outputs});
  }
  std::fprintf(out, "%s", table.ToString().c_str());
  for (const std::string& error : errors) {
    std::fprintf(out, "\ninvalid plan: %s", error.c_str());
  }
  std::fprintf(out,
               "\n'units' is the distributable unit-grid size: slice a "
               "plan with --slice=i/N and\nmerge the partials with "
               "loloha_merge (see README \"Distributed execution\").\n");
}

}  // namespace loloha

// Protocol runners: one uniform interface that executes a full longitudinal
// collection (τ steps over a Dataset) for each protocol of Sec. 5 and
// returns the per-step estimate matrix plus per-user privacy accounting.
//
// Runners use the population-scale implementations (mechanism-identical to
// the per-user client classes; see lue.h / loloha.h / dbitflip.h) and
// shard each step's per-user work across a thread pool (util/thread_pool.h).
// Every (step, shard) pair draws from its own deterministic Rng stream, so
// Run(data, seed) is bit-reproducible at any thread count: the shard
// layout (RunnerOptions::num_shards), not the worker count, determines
// every random draw.

#ifndef LOLOHA_SIM_RUNNER_H_
#define LOLOHA_SIM_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/theory.h"
#include "data/dataset.h"
#include "sim/protocol_spec.h"

namespace loloha {

class ThreadPool;

struct RunResult {
  std::string protocol;
  // τ rows; k columns (b columns for dBitFlipPM with b < k).
  std::vector<std::vector<double>> estimates;
  // ε̌^(u) per user (Definition 3.2 accounting), length n.
  std::vector<double> per_user_epsilon;
  // Communication cost of one report in bits.
  double comm_bits_per_report = 0.0;
  // Number of histogram bins in `estimates` (k, or b for dBitFlipPM).
  uint32_t bins = 0;
};

// Fixed shard count used when RunnerOptions::num_shards is 0. Large enough
// to keep a typical machine's cores busy, small enough that the per-shard
// support merges stay negligible.
inline constexpr uint32_t kDefaultNumShards = 64;

// Options that depend on the deployment (threading only). Protocol
// parameters — budgets and the dBitFlipPM bucket layout — live on
// ProtocolSpec.
struct RunnerOptions {
  // Worker threads driving each step's shards (1 = run on the calling
  // thread only; 0 = std::thread::hardware_concurrency()). Does not affect
  // the output: estimates are bit-identical for every value.
  uint32_t num_threads = 1;
  // RNG-stream shards per step (0 = kDefaultNumShards). Changing this
  // changes the random streams — and therefore the exact estimates, though
  // never their distribution.
  uint32_t num_shards = 0;
  // Borrowed process-wide pool shared across runners / Monte-Carlo
  // repetitions (not owned; must outlive every Run). When null, each Run
  // constructs a private num_threads-wide pool as a fallback — correct but
  // slower, since thread spawn is most of the overhead at small n. Does
  // not affect the output either way.
  ThreadPool* pool = nullptr;
};

// Effective thread / shard counts for `options` (resolving the 0 defaults).
uint32_t ResolveNumThreads(const RunnerOptions& options);
uint32_t ResolveNumShards(const RunnerOptions& options);

// Copy of `options` with num_threads / num_shards resolved to their
// effective nonzero values. MakeRunner normalizes once at construction,
// so runner code never re-resolves per call site.
RunnerOptions NormalizeRunnerOptions(RunnerOptions options);

class LongitudinalRunner {
 public:
  virtual ~LongitudinalRunner() = default;

  virtual std::string name() const = 0;

  // Executes all τ collection steps. Deterministic for a given seed.
  virtual RunResult Run(const Dataset& data, uint64_t seed) const = 0;
};

// The factory: one generic sharded engine (a per-protocol session trait
// drives the population step, the estimator fold, and the privacy
// accounting; the step-loop/shard/accounting shape exists once) covering
// every registry protocol — the paper's seven methods plus Naive-OLH.
std::unique_ptr<LongitudinalRunner> MakeRunner(const ProtocolSpec& spec,
                                               const RunnerOptions& options = {});

// The evaluation's seven methods, in the paper's legend order.
std::vector<ProtocolId> Figure3Protocols(bool include_dbitflip);

// The same legend as ProtocolSpecs carrying the panel's dBitFlipPM bucket
// layout; budgets are placeholders for the caller's (ε∞, ε1) grid.
std::vector<ProtocolSpec> Figure3Specs(bool include_dbitflip,
                                       uint32_t bucket_divisor);

}  // namespace loloha

#endif  // LOLOHA_SIM_RUNNER_H_

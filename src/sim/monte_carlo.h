// Parallel Monte-Carlo driver for the figure/table reproductions.
//
// The evaluation's outer loop — `runs` repetitions of every runner
// configuration in a grid — dominates wall-clock in the Fig. 3 panels,
// and for the paper's small-n datasets outer-loop parallelism beats the
// runners' inner per-step sharding. RunMonteCarloGrid farms the
// (config, run) cells out to a shared ThreadPool as independent tasks.
//
// Determinism: every cell draws from its own StreamSeed stream keyed by
// (base_seed, config, run), each cell writes only its own result slot, and
// runners launched inside pool tasks execute their inner ParallelFor
// shards inline in shard order (see util/thread_pool.h). The grid output
// is therefore byte-identical for every pool size — including the
// serial fallback (pool == nullptr) — as long as the factory and metric
// callbacks are pure.

#ifndef LOLOHA_SIM_MONTE_CARLO_H_
#define LOLOHA_SIM_MONTE_CARLO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "sim/runner.h"
#include "sim/slice.h"

namespace loloha {

class ThreadPool;

// Seed of one Monte-Carlo cell: independent streams per (config, run).
uint64_t MonteCarloSeed(uint64_t base_seed, uint32_t config, uint32_t run);

struct MonteCarloOptions {
  // Repetitions per configuration (>= 1).
  uint32_t runs = 1;
  // Base seed; cells derive their streams via MonteCarloSeed.
  uint64_t base_seed = 0;
  // Borrowed shared pool for the (config, run) cells (not owned). Null
  // runs the grid serially on the calling thread — bit-identical to every
  // pool size by construction.
  ThreadPool* pool = nullptr;
  // Invoked exactly once per finished cell with (cells_completed,
  // cells_total). Invocations are serialized under the driver's progress
  // mutex and carry a strictly increasing count (exactly one call carries
  // total) — the callback itself needs no synchronization of its own.
  // Treat the values as a progress sample, not a completion signal;
  // RunMonteCarloGrid returning is the completion signal. Null disables.
  std::function<void(uint32_t completed, uint32_t total)> progress;
  // Distributed slicing: when active, only cells whose global unit index
  // (slice_first_cell + config * runs + run) is owned by the slice are
  // evaluated; unowned result slots stay 0.0 and the progress total
  // shrinks to the owned count. Because each cell draws from its own
  // MonteCarloSeed stream, the owned cells' values are bit-identical to
  // the same cells of an unsliced run.
  SliceSpec slice;
  // Global unit index of this grid's cell (0, 0) within the plan's
  // flattened unit space (plans with several datasets run several grids).
  uint64_t slice_first_cell = 0;
};

// Instantiates the runner of configuration `config`; called once per
// (config, run) cell, possibly concurrently — must be thread-safe and
// deterministic in `config`.
using MonteCarloRunnerFactory =
    std::function<std::unique_ptr<LongitudinalRunner>(uint32_t config)>;

// Reduces one run's RunResult to the scalar the caller aggregates (e.g.
// MSE_avg). Also called concurrently; must be pure.
using MonteCarloMetric =
    std::function<double(uint32_t config, const RunResult& result)>;

// Evaluates metric(config, Run(data, MonteCarloSeed(...))) for every
// (config, run) cell and returns num_configs rows of `runs` values each,
// ordered by run. Byte-identical output for every pool size.
std::vector<std::vector<double>> RunMonteCarloGrid(
    const MonteCarloRunnerFactory& factory, const Dataset& data,
    uint32_t num_configs, const MonteCarloOptions& options,
    const MonteCarloMetric& metric);

// Declarative form: one config per ProtocolSpec, instantiated through
// MakeRunner(spec, runner_options). What the spec-string drivers
// (bench/bench_common.cc, examples) call.
std::vector<std::vector<double>> RunMonteCarloGrid(
    std::span<const ProtocolSpec> specs, const RunnerOptions& runner_options,
    const Dataset& data, const MonteCarloOptions& options,
    const MonteCarloMetric& metric);

}  // namespace loloha

#endif  // LOLOHA_SIM_MONTE_CARLO_H_

// Slice layer of the distributed experiment executor.
//
// PRs 1–5 made every Monte-Carlo (config, run) cell a placement-
// independent unit of work: per-cell StreamSeed streams mean a plan file
// plus a slice index is a complete work description. This header names
// that contract:
//
//   SliceSpec {index, count}   one shard of a plan's flattened unit grid,
//                              owned round-robin by global unit index
//                              (unit % count == index) — deterministic,
//                              dataset-independent assignment.
//   SliceUnit                  one unit's result: a raw Monte-Carlo cell
//                              metric (exact double bits) for kMse plans,
//                              or one pre-formatted table row for the
//                              closed-form / accountant / attack kinds.
//   SlicePartial               everything one slice run produced: the
//                              owned units plus the provenance needed to
//                              refuse inconsistent merges (plan name,
//                              kind, seed, slice, unit counts, and the
//                              canonical effective plan text).
//
// Serialization: a partial is either a CSV body plus a JSON provenance
// sidecar (CsvSink's slice mode) or one self-contained JSON document
// (JsonSink's slice mode). Both parse back here with line-numbered
// errors, and CombineSlicePartials refuses incomplete or inconsistent
// sets all-or-none — the same spirit as the sharded snapshot restore
// (docs/STATE_BACKENDS.md). tools/loloha_merge.cc is the CLI over this
// API; sim/experiment.h's MergeExperimentSlices turns combined units
// back into artifacts byte-identical to a single-process run.

#ifndef LOLOHA_SIM_SLICE_H_
#define LOLOHA_SIM_SLICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace loloha {

// One shard of a plan's unit grid. count == 0 means slicing is off (the
// single-process path); an active slice owns the units congruent to
// `index` mod `count`. Note count == 1 is still a (trivial) slice run:
// it produces a partial covering every unit, and merging that one
// partial must reproduce the single-process bytes.
struct SliceSpec {
  uint32_t index = 0;
  uint32_t count = 0;

  bool active() const { return count > 0; }
  bool Owns(uint64_t unit) const {
    return !active() || unit % count == index;
  }
  // Number of owned units in a grid of `total` units.
  uint64_t OwnedCount(uint64_t total) const {
    if (!active()) return total;
    return total / count + (index < total % count ? 1 : 0);
  }

  friend bool operator==(const SliceSpec&, const SliceSpec&) = default;
};

// Parses "i/N" (e.g. "0/4") with i < N, N >= 1. On failure returns false
// and stores a reason in `error` when non-null.
bool ParseSliceSpec(std::string_view text, SliceSpec* slice,
                    std::string* error = nullptr);

// "i-of-N", the token used in partial file names ("slice-0-of-4").
std::string SliceSpecToken(const SliceSpec& slice);

// One computed unit. kMse plans produce kCell units (the per-(config,
// run) metric value, carried as exact IEEE-754 bits); every other kind
// produces kRow units (one pre-formatted table row in canonical cell
// order). The unit type is a function of the plan kind, never mixed.
struct SliceUnit {
  enum class Type { kCell, kRow };

  uint64_t index = 0;  // global unit index in canonical grid order
  Type type = Type::kCell;
  double cell = 0.0;              // kCell payload
  std::vector<std::string> row;   // kRow payload

  friend bool operator==(const SliceUnit&, const SliceUnit&) = default;
};

// Everything one slice run produced.
struct SlicePartial {
  std::string plan_name;
  std::string kind;         // ExperimentKindName of the plan's kind
  uint64_t seed = 0;
  std::string git_describe;
  SliceSpec slice;          // always active in a well-formed partial
  uint64_t units_total = 0; // grid size across the whole plan
  // Canonical effective plan text (ExperimentPlan::ToString with
  // execution-only fields neutralized — see SliceFingerprintPlan in
  // sim/experiment.h). Two partials merge only if this matches exactly.
  std::string plan_text;
  std::vector<SliceUnit> units;  // owned units, ascending by index
  std::string source;            // file name, for error messages only

  friend bool operator==(const SlicePartial& a, const SlicePartial& b) {
    return a.plan_name == b.plan_name && a.kind == b.kind &&
           a.seed == b.seed && a.slice == b.slice &&
           a.units_total == b.units_total && a.plan_text == b.plan_text &&
           a.units == b.units;
  }
};

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

// JSON string-body escaping shared by every JSON emitter in the repo
// (provenance sidecars, JsonSink documents, slice partials). CSV field
// escaping lives in util/table.h (CsvEscapeField) — the partial writer
// and TextTable::ToCsv must agree byte for byte.
std::string JsonEscape(std::string_view text);

// The CSV body of a partial:
//
//   loloha_slice,v1,<plan>,<kind>,<seed>,<index>,<count>,<units_total>
//   cell,<unit>,<0x + 16 hex digits>        (kMse)
//   row,<unit>,<cell>,<cell>,...            (other kinds)
//   end,<owned unit count>
//
// The header and `end` trailer make truncation detectable: a partial
// without a matching trailer is refused with the offending line number.
std::string SlicePartialCsv(const SlicePartial& partial);

// The "data" JSON fragment of a self-contained partial document:
//   "units_data": [["cell", "<unit>", "0x..."], ["row", "<unit>", ...]]
// (appended to the shared provenance body by JsonSink's slice mode).
void AppendSlicePartialDataJson(const SlicePartial& partial,
                                std::string* out);

// Parses a CSV partial body plus its provenance sidecar. `csv_name` /
// `sidecar_name` label errors ("<file>:<line>: ..."). Cross-checks the
// CSV header line against the sidecar and validates unit ordering and
// slice ownership. All-or-none: any inconsistency fails the whole parse.
bool ParseSlicePartialCsv(std::string_view csv_bytes,
                          std::string_view sidecar_json,
                          const std::string& csv_name,
                          const std::string& sidecar_name,
                          SlicePartial* partial,
                          std::string* error = nullptr);

// Parses a self-contained JSON partial (JsonSink slice mode output).
bool ParseSlicePartialJson(std::string_view json_bytes,
                           const std::string& name, SlicePartial* partial,
                           std::string* error = nullptr);

// Loads a partial from disk, dispatching on extension: "*.json" is a
// self-contained document, anything else is a CSV body whose sidecar is
// "<path>.meta.json" (a missing sidecar is an error naming that path).
bool LoadSlicePartial(const std::string& path, SlicePartial* partial,
                      std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Combination.
// ---------------------------------------------------------------------------

// Validates a slice set all-or-none and flattens it into dense canonical
// order. Refuses (naming the offending partial's source): mismatched
// plan name / kind / seed / slice count / unit totals / plan fingerprint,
// duplicate or missing slice indices, units outside the partial's residue
// class, and partials not covering exactly their owned unit set. On
// success `units` holds every unit 0..units_total-1 in order.
bool CombineSlicePartials(const std::vector<SlicePartial>& parts,
                          std::vector<SliceUnit>* units,
                          std::string* error = nullptr);

}  // namespace loloha

#endif  // LOLOHA_SIM_SLICE_H_

// The change-point detection analysis of Table 2: because dBitFlipPM has
// no second randomization round, a user's report is a deterministic replay
// of the memoized vector for its current bucket. The server therefore sees
// the report change exactly when (a) the bucket changed and (b) the two
// buckets' memoized vectors differ on the sampled positions. Table 2
// measures, per dataset and ε∞, the percentage of users for which *every*
// bucket change produced a differing report — i.e. the attacker recovers
// all change points.

#ifndef LOLOHA_SIM_ATTACK_H_
#define LOLOHA_SIM_ATTACK_H_

#include <cstdint>

#include "data/dataset.h"

namespace loloha {

struct DetectionResult {
  // Users with at least one bucket change in their sequence.
  uint64_t users_with_changes = 0;
  // Among those, users whose every change was visible to the server.
  uint64_t users_fully_detected = 0;

  // Percentage in [0, 100]; 0 when no user ever changes bucket.
  double PercentFullyDetected() const {
    if (users_with_changes == 0) return 0.0;
    return 100.0 * static_cast<double>(users_fully_detected) /
           static_cast<double>(users_with_changes);
  }
};

// Simulates dBitFlipPM memoization for every user (drawing sampled sets
// and memo vectors) and evaluates the worst-case detection criterion.
DetectionResult DBitFlipDetection(const Dataset& data, uint32_t b, uint32_t d,
                                  double eps_perm, uint64_t seed);

}  // namespace loloha

#endif  // LOLOHA_SIM_ATTACK_H_

#include "multidim/multidim.h"

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

std::vector<LolohaParams> ResolveMultidimParams(
    const MultidimConfig& config) {
  LOLOHA_CHECK_MSG(!config.domain_sizes.empty(),
                   "need at least one attribute");
  const double m = static_cast<double>(config.domain_sizes.size());
  const bool split = config.strategy == MultidimStrategy::kSplit;
  const double eps_perm = split ? config.eps_perm / m : config.eps_perm;
  const double eps_first = split ? config.eps_first / m : config.eps_first;

  std::vector<LolohaParams> params;
  params.reserve(config.domain_sizes.size());
  for (const uint32_t k : config.domain_sizes) {
    const uint32_t g = config.g == 0 ? OptimalLolohaG(eps_perm, eps_first)
                                     : config.g;
    params.push_back(MakeLolohaParams(k, g, eps_perm, eps_first));
  }
  return params;
}

MultidimLolohaClient::MultidimLolohaClient(const MultidimConfig& config,
                                           Rng& rng)
    : config_(config), params_(ResolveMultidimParams(config)) {
  const size_t m = config.domain_sizes.size();
  clients_.resize(m);
  if (config.strategy == MultidimStrategy::kSample) {
    // The sampled attribute is drawn once and fixed forever; see header.
    const uint32_t j = static_cast<uint32_t>(rng.UniformInt(m));
    sampled_attribute_ = j;
    clients_[j] = std::make_unique<LolohaClient>(params_[j], rng);
  } else {
    for (size_t j = 0; j < m; ++j) {
      clients_[j] = std::make_unique<LolohaClient>(params_[j], rng);
    }
  }
}

std::vector<AttributeReport> MultidimLolohaClient::Report(
    const std::vector<uint32_t>& values, Rng& rng) {
  LOLOHA_CHECK(values.size() == config_.domain_sizes.size());
  std::vector<AttributeReport> reports;
  if (sampled_attribute_.has_value()) {
    const uint32_t j = *sampled_attribute_;
    reports.push_back({j, clients_[j]->Report(values[j], rng)});
  } else {
    reports.reserve(clients_.size());
    for (uint32_t j = 0; j < clients_.size(); ++j) {
      reports.push_back({j, clients_[j]->Report(values[j], rng)});
    }
  }
  return reports;
}

const UniversalHash* MultidimLolohaClient::HashFor(uint32_t attribute) const {
  LOLOHA_CHECK(attribute < clients_.size());
  return clients_[attribute] ? &clients_[attribute]->hash() : nullptr;
}

double MultidimLolohaClient::PrivacySpent() const {
  double total = 0.0;
  for (size_t j = 0; j < clients_.size(); ++j) {
    if (clients_[j]) {
      total += params_[j].eps_perm * clients_[j]->distinct_memos();
    }
  }
  return total;
}

MultidimLolohaServer::MultidimLolohaServer(const MultidimConfig& config)
    : config_(config), params_(ResolveMultidimParams(config)) {
  support_.resize(config.domain_sizes.size());
  reporters_.assign(config.domain_sizes.size(), 0);
  for (size_t j = 0; j < config.domain_sizes.size(); ++j) {
    support_[j].assign(config.domain_sizes[j], 0);
  }
}

void MultidimLolohaServer::BeginStep() {
  for (size_t j = 0; j < support_.size(); ++j) {
    support_[j].assign(config_.domain_sizes[j], 0);
    reporters_[j] = 0;
  }
}

void MultidimLolohaServer::Accumulate(
    const MultidimLolohaClient& client,
    const std::vector<AttributeReport>& reports) {
  for (const AttributeReport& report : reports) {
    LOLOHA_CHECK(report.attribute < support_.size());
    const UniversalHash* hash = client.HashFor(report.attribute);
    LOLOHA_CHECK_MSG(hash != nullptr, "report from unsampled attribute");
    const uint32_t k = config_.domain_sizes[report.attribute];
    std::vector<uint64_t>& counts = support_[report.attribute];
    for (uint32_t v = 0; v < k; ++v) {
      if ((*hash)(v) == report.cell) ++counts[v];
    }
    ++reporters_[report.attribute];
  }
}

std::vector<std::vector<double>> MultidimLolohaServer::EstimateStep() const {
  std::vector<std::vector<double>> estimates(support_.size());
  for (size_t j = 0; j < support_.size(); ++j) {
    if (reporters_[j] == 0) continue;
    std::vector<double> counts(support_[j].begin(), support_[j].end());
    estimates[j] = EstimateFrequenciesChained(
        counts, static_cast<double>(reporters_[j]),
        params_[j].EstimatorFirst(), params_[j].irr);
  }
  return estimates;
}

}  // namespace loloha

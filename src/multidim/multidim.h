// Multidimensional longitudinal collection (the paper's closing
// perspective: integrating LOLOHA into the multi-freq-ldpy toolchain).
//
// Users hold m attributes with domains k_1..k_m and the server wants one
// longitudinal frequency estimate per attribute. Two standard budget
// strategies from the multidimensional LDP literature [3, 39]:
//
//   * SPL (split): every user reports every attribute each step, running
//     an independent LOLOHA instance per attribute at (ε∞/m, ε1/m). The
//     sequential composition over the m reports keeps the per-step budget
//     at ε1 and the longitudinal budget at Σ_j g_j · ε∞/m.
//
//   * SMP (sample): every user picks ONE attribute uniformly at setup and
//     reports only it, at the full (ε∞, ε1). The attribute choice is fixed
//     across time — resampling would leak a fresh ε∞ per attribute and
//     defeat memoization. Each attribute's estimator then sees ~n/m users.
//
// SMP dominates SPL in utility for all but tiny m (the LDP noise grows
// super-linearly as ε shrinks, while halving n only doubles variance) —
// the multidimensional analogue of the paper's budget-splitting remark in
// Sec. 1; the multidim_survey example and tests quantify it.

#ifndef LOLOHA_MULTIDIM_MULTIDIM_H_
#define LOLOHA_MULTIDIM_MULTIDIM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/loloha.h"
#include "core/loloha_params.h"
#include "util/rng.h"

namespace loloha {

enum class MultidimStrategy {
  kSplit,   // SPL
  kSample,  // SMP
};

struct MultidimConfig {
  std::vector<uint32_t> domain_sizes;  // k_j per attribute
  double eps_perm = 0.0;               // total longitudinal budget ε∞
  double eps_first = 0.0;              // total first-report budget ε1
  MultidimStrategy strategy = MultidimStrategy::kSample;
  // g per attribute: 0 = optimal (Eq. 6 at the per-attribute budget),
  // 2 = BiLOLOHA, etc.
  uint32_t g = 0;
};

// Resolved per-attribute LOLOHA parameters for a config.
std::vector<LolohaParams> ResolveMultidimParams(const MultidimConfig& config);

// One attribute's sanitized report.
struct AttributeReport {
  uint32_t attribute = 0;
  uint32_t cell = 0;
};

class MultidimLolohaClient {
 public:
  MultidimLolohaClient(const MultidimConfig& config, Rng& rng);

  // Sanitizes this step's attribute values (`values[j]` in [0, k_j)).
  // SPL returns m reports; SMP returns exactly one.
  std::vector<AttributeReport> Report(const std::vector<uint32_t>& values,
                                      Rng& rng);

  // The per-attribute hash (SMP: only the sampled attribute has one).
  const UniversalHash* HashFor(uint32_t attribute) const;

  // SMP: the attribute this user reports on; nullopt under SPL.
  std::optional<uint32_t> sampled_attribute() const {
    return sampled_attribute_;
  }

  // Longitudinal loss under Definition 3.2 (summed over attributes).
  double PrivacySpent() const;

 private:
  MultidimConfig config_;
  std::vector<LolohaParams> params_;
  std::vector<std::unique_ptr<LolohaClient>> clients_;  // per attribute
  std::optional<uint32_t> sampled_attribute_;
};

class MultidimLolohaServer {
 public:
  explicit MultidimLolohaServer(const MultidimConfig& config);

  void BeginStep();

  // Folds a user's reports for this step (with their per-attribute
  // hashes, fetched from the client or a registry).
  void Accumulate(const MultidimLolohaClient& client,
                  const std::vector<AttributeReport>& reports);

  // Per-attribute frequency estimates for the step. Attributes that
  // received no reports yield empty vectors.
  std::vector<std::vector<double>> EstimateStep() const;

 private:
  MultidimConfig config_;
  std::vector<LolohaParams> params_;
  std::vector<std::vector<uint64_t>> support_;  // per attribute, size k_j
  std::vector<uint64_t> reporters_;             // per attribute
};

}  // namespace loloha

#endif  // LOLOHA_MULTIDIM_MULTIDIM_H_

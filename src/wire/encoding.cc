#include "wire/encoding.h"

#include <array>
#include <cstring>

namespace loloha {

namespace {

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Cursor-style reader with bounds checking.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadBytes(size_t count, const uint8_t** data) {
    if (pos_ + count > bytes_.size()) return false;
    *data = reinterpret_cast<const uint8_t*>(bytes_.data()) + pos_;
    pos_ += count;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

bool ReadHeader(Reader& reader, WireType expected) {
  uint8_t tag = 0;
  uint8_t version = 0;
  if (!reader.ReadU8(&tag) || !reader.ReadU8(&version)) return false;
  return tag == static_cast<uint8_t>(expected) && version == kWireVersion;
}

void WriteHeader(std::string& out, WireType type) {
  PutU8(out, static_cast<uint8_t>(type));
  PutU8(out, kWireVersion);
}

void PutPackedBits(std::string& out, const std::vector<uint8_t>& bits) {
  uint8_t current = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) current |= static_cast<uint8_t>(1u << (i & 7));
    if ((i & 7) == 7) {
      PutU8(out, current);
      current = 0;
    }
  }
  if (bits.size() % 8 != 0) PutU8(out, current);
}

bool ReadPackedBits(Reader& reader, uint32_t count,
                    std::vector<uint8_t>* bits) {
  const uint8_t* data = nullptr;
  const size_t num_bytes = (count + 7) / 8;
  if (!reader.ReadBytes(num_bytes, &data)) return false;
  // Trailing pad bits must be zero (canonical form).
  if (count % 8 != 0) {
    const uint8_t last = data[num_bytes - 1];
    if ((last >> (count % 8)) != 0) return false;
  }
  bits->assign(count, 0);
  for (uint32_t i = 0; i < count; ++i) {
    (*bits)[i] = (data[i / 8] >> (i & 7)) & 1;
  }
  return true;
}

}  // namespace

std::string EncodeGrrReport(uint32_t value) {
  std::string out;
  WriteHeader(out, WireType::kGrrReport);
  PutU32(out, value);
  return out;
}

bool DecodeGrrReport(const std::string& bytes, uint32_t k, uint32_t* value) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kGrrReport)) return false;
  uint32_t v = 0;
  if (!reader.ReadU32(&v) || !reader.AtEnd() || v >= k) return false;
  *value = v;
  return true;
}

std::string EncodeUeReport(const std::vector<uint8_t>& bits) {
  std::string out;
  WriteHeader(out, WireType::kUeReport);
  PutU32(out, static_cast<uint32_t>(bits.size()));
  PutPackedBits(out, bits);
  return out;
}

bool DecodeUeReport(const std::string& bytes, uint32_t k,
                    std::vector<uint8_t>* bits) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kUeReport)) return false;
  uint32_t count = 0;
  if (!reader.ReadU32(&count) || count != k) return false;
  if (!ReadPackedBits(reader, count, bits) || !reader.AtEnd()) return false;
  return true;
}

std::string EncodeLhReport(const LhReport& report) {
  std::string out;
  WriteHeader(out, WireType::kLhReport);
  PutU64(out, report.hash.a());
  PutU64(out, report.hash.b());
  PutU32(out, report.hash.range());
  PutU32(out, report.cell);
  return out;
}

bool DecodeLhReport(const std::string& bytes, uint32_t g, LhReport* report) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kLhReport)) return false;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t range = 0;
  uint32_t cell = 0;
  if (!reader.ReadU64(&a) || !reader.ReadU64(&b) || !reader.ReadU32(&range) ||
      !reader.ReadU32(&cell) || !reader.AtEnd()) {
    return false;
  }
  if (range != g || cell >= g) return false;
  if (a < 1 || a >= UniversalHash::kPrime || b >= UniversalHash::kPrime) {
    return false;
  }
  report->hash = UniversalHash(a, b, range);
  report->cell = cell;
  return true;
}

std::string EncodeLolohaHello(const UniversalHash& hash) {
  std::string out;
  WriteHeader(out, WireType::kLolohaHello);
  PutU64(out, hash.a());
  PutU64(out, hash.b());
  PutU32(out, hash.range());
  return out;
}

bool DecodeLolohaHello(const std::string& bytes, uint32_t g,
                       UniversalHash* hash) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kLolohaHello)) return false;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t range = 0;
  if (!reader.ReadU64(&a) || !reader.ReadU64(&b) ||
      !reader.ReadU32(&range) || !reader.AtEnd()) {
    return false;
  }
  if (range != g) return false;
  if (a < 1 || a >= UniversalHash::kPrime || b >= UniversalHash::kPrime) {
    return false;
  }
  *hash = UniversalHash(a, b, range);
  return true;
}

std::string EncodeLolohaReport(uint32_t cell) {
  std::string out;
  WriteHeader(out, WireType::kLolohaReport);
  PutU32(out, cell);
  return out;
}

bool DecodeLolohaReport(const std::string& bytes, uint32_t g,
                        uint32_t* cell) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kLolohaReport)) return false;
  uint32_t c = 0;
  if (!reader.ReadU32(&c) || !reader.AtEnd() || c >= g) return false;
  *cell = c;
  return true;
}

std::string EncodeDBitHello(const std::vector<uint32_t>& sampled) {
  std::string out;
  WriteHeader(out, WireType::kDBitHello);
  PutU32(out, static_cast<uint32_t>(sampled.size()));
  for (const uint32_t j : sampled) PutU32(out, j);
  return out;
}

bool DecodeDBitHello(const std::string& bytes, uint32_t b, uint32_t d,
                     std::vector<uint32_t>* sampled) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kDBitHello)) return false;
  uint32_t count = 0;
  if (!reader.ReadU32(&count) || count != d) return false;
  std::vector<uint32_t> out(count);
  std::vector<uint8_t> seen(b, 0);
  for (uint32_t i = 0; i < count; ++i) {
    if (!reader.ReadU32(&out[i]) || out[i] >= b) return false;
    if (seen[out[i]]) return false;  // duplicates are malformed
    seen[out[i]] = 1;
  }
  if (!reader.AtEnd()) return false;
  *sampled = std::move(out);
  return true;
}

std::string EncodeDBitReport(const std::vector<uint8_t>& bits) {
  std::string out;
  WriteHeader(out, WireType::kDBitReport);
  PutU32(out, static_cast<uint32_t>(bits.size()));
  PutPackedBits(out, bits);
  return out;
}

bool DecodeDBitReport(const std::string& bytes, uint32_t d,
                      std::vector<uint8_t>* bits) {
  Reader reader(bytes);
  if (!ReadHeader(reader, WireType::kDBitReport)) return false;
  uint32_t count = 0;
  if (!reader.ReadU32(&count) || count != d) return false;
  if (!ReadPackedBits(reader, count, bits) || !reader.AtEnd()) return false;
  return true;
}

bool PeekWireType(const std::string& bytes, WireType* type) {
  if (bytes.size() < 2) return false;
  const uint8_t tag = static_cast<uint8_t>(bytes[0]);
  if (tag < 1 || tag > 7) return false;
  *type = static_cast<WireType>(tag);
  return true;
}

size_t DecodeLolohaReportBatch(std::span<const Message> batch, uint32_t g,
                               uint32_t* cells, uint8_t* ok) {
  size_t well_formed = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    ok[i] = DecodeLolohaReport(batch[i].bytes, g, &cells[i]) ? 1 : 0;
    well_formed += ok[i];
  }
  return well_formed;
}

size_t DecodeDBitReportBatch(std::span<const Message> batch, uint32_t d,
                             uint8_t* bits, uint8_t* ok) {
  // Packed-bits fast path. dBitFlipPM ingest is decode-bound, and every
  // well-formed report in a batch has the same fixed size, so the batch
  // decoder validates each payload inline (exact length, header, count,
  // zero pad bits — the same checks DecodeDBitReport makes) and unpacks
  // eight bits per input byte through a byte-spread table, writing
  // straight into the caller's arena. This skips the scalar path's
  // per-report scratch vector, per-bit shift loop, and copy-out.
  static constexpr std::array<std::array<uint8_t, 8>, 256> kSpread = [] {
    std::array<std::array<uint8_t, 8>, 256> table{};
    for (uint32_t b = 0; b < 256; ++b) {
      for (uint32_t i = 0; i < 8; ++i) {
        table[b][i] = static_cast<uint8_t>((b >> i) & 1);
      }
    }
    return table;
  }();
  const size_t payload_bytes = (d + 7) / 8;
  const size_t message_size = 2 + 4 + payload_bytes;  // header, count, bits
  size_t well_formed = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    ok[i] = 0;
    const std::string& bytes = batch[i].bytes;
    if (bytes.size() != message_size) continue;
    const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
    if (data[0] != static_cast<uint8_t>(WireType::kDBitReport) ||
        data[1] != kWireVersion) {
      continue;
    }
    const uint32_t count = static_cast<uint32_t>(data[2]) |
                           static_cast<uint32_t>(data[3]) << 8 |
                           static_cast<uint32_t>(data[4]) << 16 |
                           static_cast<uint32_t>(data[5]) << 24;
    if (count != d) continue;
    const uint8_t* packed = data + 6;
    // Trailing pad bits must be zero (canonical form).
    if ((d & 7) != 0 && (packed[payload_bytes - 1] >> (d & 7)) != 0) {
      continue;
    }
    uint8_t* out = bits + i * d;
    const uint32_t full_bytes = d / 8;
    for (uint32_t w = 0; w < full_bytes; ++w) {
      std::memcpy(out + w * 8, kSpread[packed[w]].data(), 8);
    }
    for (uint32_t j = full_bytes * 8; j < d; ++j) {
      out[j] = (packed[j >> 3] >> (j & 7)) & 1;
    }
    ok[i] = 1;
    ++well_formed;
  }
  return well_formed;
}

}  // namespace loloha

// Wire encoding for client reports.
//
// A deployment ships reports over the network; this module defines a
// compact, versioned, little-endian binary format for every report type in
// the library, with strict decode-side validation (a malformed byte string
// never crashes the server — decoding returns false).
//
// Layout: every message starts with a 1-byte type tag and a 1-byte format
// version, followed by the type-specific payload. Integers are fixed-width
// little-endian; bit vectors are packed 8-per-byte.

#ifndef LOLOHA_WIRE_ENCODING_H_
#define LOLOHA_WIRE_ENCODING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "oracle/local_hash.h"
#include "longitudinal/dbitflip.h"

namespace loloha {

// A sender-tagged wire message — the unit of the server's batched
// ingestion (server/collector.h). The bytes are one encoded report or
// hello as produced by the encoders below.
struct Message {
  uint64_t user_id = 0;
  std::string bytes;
};

enum class WireType : uint8_t {
  kGrrReport = 1,       // single value in [0, k)
  kUeReport = 2,        // packed k-bit vector
  kLhReport = 3,        // hash coefficients + cell
  kLolohaHello = 4,     // hash coefficients (sent once per user)
  kLolohaReport = 5,    // cell only (per step)
  kDBitHello = 6,       // sampled bucket indices (sent once per user)
  kDBitReport = 7,      // packed d-bit vector
};

constexpr uint8_t kWireVersion = 1;

// ---------------------------------------------------------------------------
// Encoders (infallible).
// ---------------------------------------------------------------------------

std::string EncodeGrrReport(uint32_t value);
std::string EncodeUeReport(const std::vector<uint8_t>& bits);
std::string EncodeLhReport(const LhReport& report);
std::string EncodeLolohaHello(const UniversalHash& hash);
std::string EncodeLolohaReport(uint32_t cell);
std::string EncodeDBitHello(const std::vector<uint32_t>& sampled);
std::string EncodeDBitReport(const std::vector<uint8_t>& bits);

// ---------------------------------------------------------------------------
// Decoders. Each returns false (leaving the output untouched or partially
// written but unusable) on any structural violation: wrong tag, wrong
// version, truncated payload, out-of-range values.
// ---------------------------------------------------------------------------

bool DecodeGrrReport(const std::string& bytes, uint32_t k, uint32_t* value);
// `k` is the expected bit-vector length.
bool DecodeUeReport(const std::string& bytes, uint32_t k,
                    std::vector<uint8_t>* bits);
// `g` is the expected hash range.
bool DecodeLhReport(const std::string& bytes, uint32_t g, LhReport* report);
bool DecodeLolohaHello(const std::string& bytes, uint32_t g,
                       UniversalHash* hash);
bool DecodeLolohaReport(const std::string& bytes, uint32_t g,
                        uint32_t* cell);
// `b` is the bucket count, `d` the expected sample size.
bool DecodeDBitHello(const std::string& bytes, uint32_t b, uint32_t d,
                     std::vector<uint32_t>* sampled);
bool DecodeDBitReport(const std::string& bytes, uint32_t d,
                      std::vector<uint8_t>* bits);

// Peeks the type tag; returns false on an empty/short message.
bool PeekWireType(const std::string& bytes, WireType* type);

// ---------------------------------------------------------------------------
// Bulk decode entry points — the server ingest hot path. Each call
// validates a whole batch's step reports in one pass: for message i,
// ok[i] = 1 iff batch[i].bytes is a well-formed report of the expected
// type, with the decoded payload written to the caller's arrays; ok[i] = 0
// otherwise (foreign tag — e.g. a hello —, truncated payload, out-of-range
// values). Decoding is pure per message, so callers may also run these
// inside parallel shards. Both return the number of well-formed reports.
// ---------------------------------------------------------------------------

// cells[i] receives message i's reported cell (in [0, g)) when ok[i] = 1.
size_t DecodeLolohaReportBatch(std::span<const Message> batch, uint32_t g,
                               uint32_t* cells, uint8_t* ok);

// bits[i * d .. (i + 1) * d) receives message i's d decoded bits when
// ok[i] = 1.
size_t DecodeDBitReportBatch(std::span<const Message> batch, uint32_t d,
                             uint8_t* bits, uint8_t* ok);

}  // namespace loloha

#endif  // LOLOHA_WIRE_ENCODING_H_

#include "server/store/user_state_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/check.h"
#include "util/rng.h"

namespace loloha {

namespace {

constexpr uint64_t kFlatMinCapacity = 1024;

bool TestBit(const std::vector<uint64_t>& bits, uint64_t i) {
  return (bits[i / 64] >> (i % 64) & 1) != 0;
}

void SetBit(std::vector<uint64_t>* bits, uint64_t i) {
  (*bits)[i / 64] |= uint64_t{1} << (i % 64);
}

// Maps a 64-bit hash onto [0, range) without division (Lemire's
// multiply-shift), so capacities need not be powers of two and Reserve()
// can size the table exactly to the target load factor.
uint64_t FastRange(uint64_t hash, uint64_t range) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(hash) * range) >> 64);
}

// The default backend: node-based hash index (user -> dense ordinal)
// over an append-only slot arena. Ordinals are insertion order and never
// move, so the reported bitmap needs no maintenance beyond growth.
class MapStore final : public UserStateStore {
 public:
  MapStore(uint32_t slot_bytes, uint64_t reserve_users)
      : UserStateStore(slot_bytes) {
    Reserve(reserve_users);
  }

  StoreKind kind() const override { return StoreKind::kMap; }

  UserRef Find(uint64_t user_id) override {
    const auto it = index_.find(user_id);
    if (it == index_.end()) return {};
    return UserRef{slots_.data() + it->second * slot_bytes_, it->second};
  }

  UserRef Insert(uint64_t user_id) override {
    const uint64_t ordinal = ids_.size();
    const bool inserted = index_.emplace(user_id, ordinal).second;
    LOLOHA_CHECK_MSG(inserted, "Insert on an already-registered user");
    ids_.push_back(user_id);
    slots_.resize(slots_.size() + slot_bytes_, 0);
    if (ordinal / 64 >= reported_.size()) reported_.push_back(0);
    return UserRef{slots_.data() + ordinal * slot_bytes_, ordinal};
  }

  bool reported(const UserRef& ref) const override {
    return TestBit(reported_, ref.slot);
  }
  void set_reported(const UserRef& ref) override {
    SetBit(&reported_, ref.slot);
  }
  void ClearReported() override {
    std::fill(reported_.begin(), reported_.end(), 0);
  }

  uint64_t user_count() const override { return ids_.size(); }

  uint64_t MemoryBytes() const override {
    // Index: one bucket pointer per bucket plus one heap node per user
    // (next pointer + key/ordinal pair), charged at allocator-chunk
    // granularity — that rounding is exactly what FlatStore saves.
    const uint64_t node_bytes =
        MallocChunkBytes(sizeof(void*) + sizeof(std::pair<uint64_t, uint64_t>));
    return index_.bucket_count() * sizeof(void*) +
           index_.size() * node_bytes + slots_.capacity() +
           ids_.capacity() * sizeof(uint64_t) +
           reported_.capacity() * sizeof(uint64_t);
  }

  void Reserve(uint64_t users) override {
    if (users == 0) return;
    index_.reserve(users);
    ids_.reserve(users);
    slots_.reserve(users * slot_bytes_);
    reported_.reserve((users + 63) / 64);
  }

  void Dump(std::vector<std::pair<uint64_t, const uint8_t*>>* out)
      const override {
    for (uint64_t ordinal = 0; ordinal < ids_.size(); ++ordinal) {
      out->emplace_back(ids_[ordinal],
                        slots_.data() + ordinal * slot_bytes_);
    }
  }

 private:
  std::unordered_map<uint64_t, uint64_t> index_;  // user id -> ordinal
  std::vector<uint64_t> ids_;                     // ordinal -> user id
  std::vector<uint8_t> slots_;                    // ordinal-major arena
  std::vector<uint64_t> reported_;                // 1 bit per ordinal
};

// The compact backend: open-addressed linear probing with keys, slots,
// and the occupied/reported bits in four parallel flat arrays — no
// per-user heap node, no bucket pointers. Grows at 7/8 load factor.
class FlatStore : public UserStateStore {
 public:
  FlatStore(uint32_t slot_bytes, uint64_t reserve_users)
      : UserStateStore(slot_bytes) {
    Reserve(reserve_users);
  }

  StoreKind kind() const override { return StoreKind::kFlat; }

  UserRef Find(uint64_t user_id) override {
    if (size_ == 0) return {};
    bool found = false;
    const uint64_t slot = ProbeSlot(user_id, &found);
    if (!found) return {};
    return UserRef{state_.data() + slot * slot_bytes_, slot};
  }

  UserRef Insert(uint64_t user_id) override {
    if ((size_ + 1) * 8 > capacity_ * 7) {
      Grow(std::max(capacity_ * 2, kFlatMinCapacity));
    }
    bool found = false;
    const uint64_t slot = ProbeSlot(user_id, &found);
    LOLOHA_CHECK_MSG(!found, "Insert on an already-registered user");
    keys_[slot] = user_id;
    SetBit(&occupied_, slot);
    uint8_t* state = state_.data() + slot * slot_bytes_;
    std::memset(state, 0, slot_bytes_);
    ++size_;
    return UserRef{state, slot};
  }

  bool reported(const UserRef& ref) const override {
    return TestBit(reported_, ref.slot);
  }
  void set_reported(const UserRef& ref) override {
    SetBit(&reported_, ref.slot);
  }
  void ClearReported() override {
    std::fill(reported_.begin(), reported_.end(), 0);
  }

  uint64_t user_count() const override { return size_; }

  uint64_t MemoryBytes() const override {
    return keys_.capacity() * sizeof(uint64_t) + state_.capacity() +
           occupied_.capacity() * sizeof(uint64_t) +
           reported_.capacity() * sizeof(uint64_t);
  }

  void Reserve(uint64_t users) override {
    if (users == 0) return;
    const uint64_t needed = users * 8 / 7 + 1;
    if (needed > capacity_) Grow(needed);
  }

  void Dump(std::vector<std::pair<uint64_t, const uint8_t*>>* out)
      const override {
    for (uint64_t slot = 0; slot < capacity_; ++slot) {
      if (!TestBit(occupied_, slot)) continue;
      out->emplace_back(keys_[slot], state_.data() + slot * slot_bytes_);
    }
  }

 private:
  // Probes to the user's slot (*found = true) or the first empty slot
  // of its chain (*found = false). Terminates because load factor < 1.
  uint64_t ProbeSlot(uint64_t user_id, bool* found) const {
    uint64_t slot = FastRange(Mix64(user_id), capacity_);
    while (TestBit(occupied_, slot)) {
      if (keys_[slot] == user_id) {
        *found = true;
        return slot;
      }
      if (++slot == capacity_) slot = 0;
    }
    *found = false;
    return slot;
  }

  void Grow(uint64_t new_capacity) {
    const std::vector<uint64_t> old_keys = std::move(keys_);
    const std::vector<uint8_t> old_state = std::move(state_);
    const std::vector<uint64_t> old_occupied = std::move(occupied_);
    const std::vector<uint64_t> old_reported = std::move(reported_);
    const uint64_t old_capacity = capacity_;
    capacity_ = new_capacity;
    keys_.assign(capacity_, 0);
    state_.assign(capacity_ * slot_bytes_, 0);
    occupied_.assign((capacity_ + 63) / 64, 0);
    reported_.assign((capacity_ + 63) / 64, 0);
    for (uint64_t old_slot = 0; old_slot < old_capacity; ++old_slot) {
      if (!TestBit(old_occupied, old_slot)) continue;
      uint64_t slot = FastRange(Mix64(old_keys[old_slot]), capacity_);
      while (TestBit(occupied_, slot)) {
        if (++slot == capacity_) slot = 0;
      }
      keys_[slot] = old_keys[old_slot];
      SetBit(&occupied_, slot);
      std::memcpy(state_.data() + slot * slot_bytes_,
                  old_state.data() + old_slot * slot_bytes_, slot_bytes_);
      if (TestBit(old_reported, old_slot)) SetBit(&reported_, slot);
    }
  }

  uint64_t capacity_ = 0;
  uint64_t size_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint8_t> state_;
  std::vector<uint64_t> occupied_;  // 1 bit per slot
  std::vector<uint64_t> reported_;  // 1 bit per slot
};

// FlatStore that checkpoints the whole table to a snapshot file at every
// step boundary. A failed write is counted and reported but does not
// stop ingestion — the previous on-disk snapshot stays intact (the
// writer renames over it only after a successful sync).
class SnapshotStore final : public FlatStore {
 public:
  SnapshotStore(uint32_t slot_bytes, uint64_t reserve_users, std::string path)
      : FlatStore(slot_bytes, reserve_users), path_(std::move(path)) {
    LOLOHA_CHECK_MSG(!path_.empty(),
                     "SnapshotStore requires StoreConfig::snapshot_path");
  }

  StoreKind kind() const override { return StoreKind::kSnapshot; }

  bool EndStepCheckpoint(const SnapshotContext& context,
                         std::string* error) override {
    const SnapshotData data = BuildSnapshotData(*this, context);
    if (!WriteSnapshotFile(path_, data, error)) {
      ++checkpoint_failures_;
      return false;
    }
    ++checkpoints_written_;
    last_checkpoint_bytes_ = SnapshotByteSize(data);
    return true;
  }

  StoreStats stats() const override {
    StoreStats out = FlatStore::stats();
    out.checkpoints_written = checkpoints_written_;
    out.checkpoint_failures = checkpoint_failures_;
    out.last_checkpoint_bytes = last_checkpoint_bytes_;
    return out;
  }

 private:
  std::string path_;
  uint64_t checkpoints_written_ = 0;
  uint64_t checkpoint_failures_ = 0;
  uint64_t last_checkpoint_bytes_ = 0;
};

}  // namespace

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kMap:
      return "map";
    case StoreKind::kFlat:
      return "flat";
    case StoreKind::kSnapshot:
      return "snapshot";
  }
  return "?";
}

bool ParseStoreKind(const std::string& name, StoreKind* out) {
  if (name == "map") {
    *out = StoreKind::kMap;
    return true;
  }
  if (name == "flat") {
    *out = StoreKind::kFlat;
    return true;
  }
  if (name == "snapshot") {
    *out = StoreKind::kSnapshot;
    return true;
  }
  return false;
}

bool UserStateStore::EndStepCheckpoint(const SnapshotContext& /*context*/,
                                       std::string* /*error*/) {
  return true;
}

StoreStats UserStateStore::stats() const {
  StoreStats out;
  out.kind = kind();
  out.users = user_count();
  out.memory_bytes = MemoryBytes();
  return out;
}

SnapshotData BuildSnapshotData(const UserStateStore& store,
                               const SnapshotContext& context) {
  std::vector<std::pair<uint64_t, const uint8_t*>> users;
  users.reserve(store.user_count());
  store.Dump(&users);
  std::sort(users.begin(), users.end(),
            [](const std::pair<uint64_t, const uint8_t*>& lhs,
               const std::pair<uint64_t, const uint8_t*>& rhs) {
              return lhs.first < rhs.first;
            });
  const uint32_t slot_bytes = store.slot_bytes();
  SnapshotData data;
  data.signature = context.signature;
  data.step = context.step;
  data.slot_bytes = slot_bytes;
  data.aux = context.aux;
  data.user_ids.reserve(users.size());
  data.slots.resize(users.size() * slot_bytes);
  for (size_t i = 0; i < users.size(); ++i) {
    data.user_ids.push_back(users[i].first);
    std::memcpy(data.slots.data() + i * slot_bytes, users[i].second,
                slot_bytes);
  }
  return data;
}

uint64_t MallocChunkBytes(uint64_t request) {
  const uint64_t chunk = (request + 8 + 15) & ~uint64_t{15};
  return chunk < 32 ? 32 : chunk;
}

std::unique_ptr<UserStateStore> MakeUserStateStore(const StoreConfig& config,
                                                   uint32_t slot_bytes) {
  LOLOHA_CHECK(slot_bytes > 0);
  switch (config.kind) {
    case StoreKind::kMap:
      return std::make_unique<MapStore>(slot_bytes, config.reserve_users);
    case StoreKind::kFlat:
      return std::make_unique<FlatStore>(slot_bytes, config.reserve_users);
    case StoreKind::kSnapshot:
      return std::make_unique<SnapshotStore>(slot_bytes, config.reserve_users,
                                             config.snapshot_path);
  }
  LOLOHA_CHECK_MSG(false, "unknown StoreKind");
  return nullptr;
}

}  // namespace loloha

// The versioned on-disk snapshot format for collector session state.
//
// A snapshot is one self-describing file holding everything a collector
// needs to resume a deployment: the config signature it was built from,
// the step index, its cumulative counters, and every registered user's
// packed memo slot. The layout is pinned by golden files under
// tests/golden/ and fuzzed in tests/snapshot_fuzz_test.cc; bump
// `kSnapshotFormatVersion` for any byte-level change.
//
// Layout (all integers little-endian, no padding):
//
//   header (16 bytes)
//     0   8  magic "LOLSNAP1"
//     8   1  snapshot format version (kSnapshotFormatVersion)
//     9   1  wire version (wire/encoding.h kWireVersion)
//     10  2  reserved, zero
//     12  4  section count (always 4)
//   then exactly four sections, in this order, each framed as
//     +0  4  tag (FourCC)
//     +4  4  CRC-32 of the payload (IEEE reflected, zlib-compatible)
//     +8  8  payload length in bytes
//     +16    payload
//
//   "SIG "  config signature string (UTF-8, no terminator)
//   "META"  u32 slot_bytes, u32 step, u64 user_count
//   "AUX "  opaque collector bytes (packed CollectorStats today)
//   "USER"  user_count records of (u64 user_id, slot_bytes state),
//           user ids strictly ascending
//
// The strictly-ascending user order makes snapshot bytes a pure function
// of the logical state: two collectors holding the same sessions write
// identical files no matter what order users registered in, so tests can
// compare snapshots with memcmp and a restored-then-resaved snapshot
// round-trips byte for byte.
//
// The parser is the trust boundary for crash recovery: every read is
// bounds-checked, every payload is CRC-verified, and any violation —
// truncation, bit flip, unknown tag, out-of-order users — fails with a
// clean error message, never a crash and never a silently-wrong load.
//
// File I/O is mmap-based: WriteSnapshotFile serializes straight into a
// MAP_SHARED mapping of `path + ".tmp"`, msyncs, then renames over the
// destination so a crash mid-write can never tear the live snapshot;
// ReadSnapshotFile parses a PROT_READ mapping without copying the file
// through a buffer first.

#ifndef LOLOHA_SERVER_STORE_SNAPSHOT_FILE_H_
#define LOLOHA_SERVER_STORE_SNAPSHOT_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace loloha {

inline constexpr uint8_t kSnapshotFormatVersion = 1;
inline constexpr char kSnapshotMagic[8] = {'L', 'O', 'L', 'S',
                                           'N', 'A', 'P', '1'};

// Fully decoded snapshot contents (and the input to the serializer).
struct SnapshotData {
  // Collector config signature (protocol family + parameters + shard
  // suffix). Restore refuses a snapshot whose signature differs.
  std::string signature;
  // Step index the snapshot resumes at (steps closed so far).
  uint32_t step = 0;
  // Bytes per user slot; must match the restoring collector's layout.
  uint32_t slot_bytes = 0;
  // Opaque collector payload (packed cumulative CollectorStats).
  std::string aux;
  // Registered users, strictly ascending by id.
  std::vector<uint64_t> user_ids;
  // user_ids.size() * slot_bytes packed state bytes, id-major.
  std::vector<uint8_t> slots;

  friend bool operator==(const SnapshotData&, const SnapshotData&) = default;
};

// CRC-32 (IEEE 0xEDB88320, reflected — matches zlib's crc32).
uint32_t Crc32(const void* data, size_t size);

// Exact serialized size of `data` in bytes.
size_t SnapshotByteSize(const SnapshotData& data);

// Serializes `data` into `dst`, which must hold SnapshotByteSize(data)
// bytes. CHECK-fails on inconsistent data (slots/user_ids mismatch).
void SerializeSnapshotInto(const SnapshotData& data, uint8_t* dst);

// Convenience wrapper returning the serialized bytes (tests, fuzzing).
std::string SerializeSnapshot(const SnapshotData& data);

// Parses and fully validates an in-memory snapshot image. Returns false
// with a diagnostic in *error on any malformation; *out is unspecified
// on failure. Never crashes on arbitrary input.
bool ParseSnapshot(const uint8_t* bytes, size_t size, SnapshotData* out,
                   std::string* error);

// Atomically (tmp + rename) writes `data` to `path` through a MAP_SHARED
// mmap, msync(MS_SYNC) + fsync before the rename. On failure returns
// false with *error set and leaves any previous snapshot at `path`
// untouched.
bool WriteSnapshotFile(const std::string& path, const SnapshotData& data,
                       std::string* error);

// mmaps `path` read-only and parses it via ParseSnapshot.
bool ReadSnapshotFile(const std::string& path, SnapshotData* out,
                      std::string* error);

}  // namespace loloha

#endif  // LOLOHA_SERVER_STORE_SNAPSHOT_FILE_H_

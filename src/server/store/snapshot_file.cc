#include "server/store/snapshot_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "wire/encoding.h"

namespace loloha {

namespace {

// Section tags, FourCC bytes in file order.
constexpr uint32_t kTagSignature = 0x20474953;  // "SIG "
constexpr uint32_t kTagMeta = 0x4154454D;       // "META"
constexpr uint32_t kTagAux = 0x20585541;        // "AUX "
constexpr uint32_t kTagUser = 0x52455355;       // "USER"
constexpr uint32_t kSectionCount = 4;
constexpr size_t kHeaderBytes = 16;
constexpr size_t kSectionHeaderBytes = 16;
constexpr size_t kMetaBytes = 16;

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

void StoreLe32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

void StoreLe64(uint8_t* dst, uint64_t v) {
  StoreLe32(dst, static_cast<uint32_t>(v));
  StoreLe32(dst + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t LoadLe32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) | static_cast<uint32_t>(src[1]) << 8 |
         static_cast<uint32_t>(src[2]) << 16 |
         static_cast<uint32_t>(src[3]) << 24;
}

uint64_t LoadLe64(const uint8_t* src) {
  return static_cast<uint64_t>(LoadLe32(src)) |
         static_cast<uint64_t>(LoadLe32(src + 4)) << 32;
}

std::string ErrnoMessage(const char* action, const std::string& path) {
  return std::string(action) + " " + path + ": " + std::strerror(errno);
}

// One serialized section: header then payload, CRC over the payload.
uint8_t* EmitSection(uint8_t* dst, uint32_t tag, const uint8_t* payload,
                     size_t length) {
  StoreLe32(dst, tag);
  StoreLe32(dst + 4, Crc32(payload, length));
  StoreLe64(dst + 8, length);
  std::memcpy(dst + kSectionHeaderBytes, payload, length);
  return dst + kSectionHeaderBytes + length;
}

struct SectionView {
  const uint8_t* payload = nullptr;
  uint64_t length = 0;
};

// Validates the section at `*offset` against the expected tag and CRC
// and advances *offset past it.
bool TakeSection(const uint8_t* bytes, size_t size, uint32_t want_tag,
                 const char* tag_name, size_t* offset, SectionView* out,
                 std::string* error) {
  if (size - *offset < kSectionHeaderBytes) {
    *error = std::string("snapshot truncated in ") + tag_name +
             " section header";
    return false;
  }
  const uint8_t* header = bytes + *offset;
  const uint32_t tag = LoadLe32(header);
  if (tag != want_tag) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "unexpected section tag 0x%08x where %s expected", tag,
                  tag_name);
    *error = buf;
    return false;
  }
  const uint32_t crc = LoadLe32(header + 4);
  const uint64_t length = LoadLe64(header + 8);
  if (length > size - *offset - kSectionHeaderBytes) {
    *error = std::string(tag_name) + " section overruns the snapshot";
    return false;
  }
  out->payload = header + kSectionHeaderBytes;
  out->length = length;
  if (Crc32(out->payload, length) != crc) {
    *error = std::string("CRC mismatch in ") + tag_name + " section";
    return false;
  }
  *offset += kSectionHeaderBytes + length;
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

size_t SnapshotByteSize(const SnapshotData& data) {
  const size_t user_bytes =
      data.user_ids.size() * (sizeof(uint64_t) + data.slot_bytes);
  return kHeaderBytes + kSectionCount * kSectionHeaderBytes +
         data.signature.size() + kMetaBytes + data.aux.size() + user_bytes;
}

void SerializeSnapshotInto(const SnapshotData& data, uint8_t* dst) {
  LOLOHA_CHECK(data.slots.size() ==
               data.user_ids.size() * size_t{data.slot_bytes});

  std::memcpy(dst, kSnapshotMagic, sizeof kSnapshotMagic);
  dst[8] = kSnapshotFormatVersion;
  dst[9] = kWireVersion;
  dst[10] = 0;
  dst[11] = 0;
  StoreLe32(dst + 12, kSectionCount);
  uint8_t* cursor = dst + kHeaderBytes;

  cursor = EmitSection(cursor, kTagSignature,
                       reinterpret_cast<const uint8_t*>(data.signature.data()),
                       data.signature.size());

  uint8_t meta[kMetaBytes];
  StoreLe32(meta, data.slot_bytes);
  StoreLe32(meta + 4, data.step);
  StoreLe64(meta + 8, data.user_ids.size());
  cursor = EmitSection(cursor, kTagMeta, meta, sizeof meta);

  cursor = EmitSection(cursor, kTagAux,
                       reinterpret_cast<const uint8_t*>(data.aux.data()),
                       data.aux.size());

  // USER is emitted in place (no staging copy of what may be hundreds of
  // megabytes): header first, records after, CRC over the final bytes.
  const uint64_t record_bytes = sizeof(uint64_t) + data.slot_bytes;
  const uint64_t user_length = data.user_ids.size() * record_bytes;
  uint8_t* user_payload = cursor + kSectionHeaderBytes;
  uint8_t* record = user_payload;
  for (size_t i = 0; i < data.user_ids.size(); ++i) {
    StoreLe64(record, data.user_ids[i]);
    std::memcpy(record + sizeof(uint64_t),
                data.slots.data() + i * data.slot_bytes, data.slot_bytes);
    record += record_bytes;
  }
  StoreLe32(cursor, kTagUser);
  StoreLe32(cursor + 4, Crc32(user_payload, user_length));
  StoreLe64(cursor + 8, user_length);
}

std::string SerializeSnapshot(const SnapshotData& data) {
  std::string bytes(SnapshotByteSize(data), '\0');
  SerializeSnapshotInto(data, reinterpret_cast<uint8_t*>(bytes.data()));
  return bytes;
}

bool ParseSnapshot(const uint8_t* bytes, size_t size, SnapshotData* out,
                   std::string* error) {
  if (size < kHeaderBytes) {
    *error = "snapshot shorter than the 16-byte header";
    return false;
  }
  if (std::memcmp(bytes, kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    *error = "bad snapshot magic";
    return false;
  }
  if (bytes[8] != kSnapshotFormatVersion) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "unsupported snapshot format version %u",
                  bytes[8]);
    *error = buf;
    return false;
  }
  if (bytes[9] != kWireVersion) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "snapshot wire version %u, expected %u",
                  bytes[9], kWireVersion);
    *error = buf;
    return false;
  }
  if (LoadLe32(bytes + 12) != kSectionCount) {
    *error = "snapshot must hold exactly 4 sections";
    return false;
  }

  size_t offset = kHeaderBytes;
  SectionView sig;
  SectionView meta;
  SectionView aux;
  SectionView user;
  if (!TakeSection(bytes, size, kTagSignature, "SIG", &offset, &sig, error) ||
      !TakeSection(bytes, size, kTagMeta, "META", &offset, &meta, error) ||
      !TakeSection(bytes, size, kTagAux, "AUX", &offset, &aux, error) ||
      !TakeSection(bytes, size, kTagUser, "USER", &offset, &user, error)) {
    return false;
  }
  if (offset != size) {
    *error = "trailing bytes after the USER section";
    return false;
  }

  if (meta.length != kMetaBytes) {
    *error = "META section must be 16 bytes";
    return false;
  }
  const uint32_t slot_bytes = LoadLe32(meta.payload);
  const uint32_t step = LoadLe32(meta.payload + 4);
  const uint64_t user_count = LoadLe64(meta.payload + 8);
  if (slot_bytes == 0) {
    *error = "META slot_bytes is zero";
    return false;
  }
  const uint64_t record_bytes = sizeof(uint64_t) + slot_bytes;
  if (user_count > user.length / record_bytes ||
      user_count * record_bytes != user.length) {
    *error = "USER section length does not match META user_count";
    return false;
  }

  out->signature.assign(reinterpret_cast<const char*>(sig.payload),
                        sig.length);
  out->step = step;
  out->slot_bytes = slot_bytes;
  out->aux.assign(reinterpret_cast<const char*>(aux.payload), aux.length);
  out->user_ids.resize(user_count);
  out->slots.resize(user_count * slot_bytes);
  const uint8_t* record = user.payload;
  uint64_t previous_id = 0;
  for (uint64_t i = 0; i < user_count; ++i) {
    const uint64_t user_id = LoadLe64(record);
    if (i > 0 && user_id <= previous_id) {
      *error = "USER records not strictly ascending by user id";
      return false;
    }
    previous_id = user_id;
    out->user_ids[i] = user_id;
    std::memcpy(out->slots.data() + i * slot_bytes, record + sizeof(uint64_t),
                slot_bytes);
    record += record_bytes;
  }
  return true;
}

bool WriteSnapshotFile(const std::string& path, const SnapshotData& data,
                       std::string* error) {
  const size_t size = SnapshotByteSize(data);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = ErrnoMessage("open", tmp);
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    *error = ErrnoMessage("ftruncate", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  void* map = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    *error = ErrnoMessage("mmap", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  SerializeSnapshotInto(data, static_cast<uint8_t*>(map));
  const bool synced = ::msync(map, size, MS_SYNC) == 0;
  ::munmap(map, size);
  if (!synced || ::fsync(fd) != 0) {
    *error = ErrnoMessage("sync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = ErrnoMessage("rename", tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadSnapshotFile(const std::string& path, SnapshotData* out,
                      std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = ErrnoMessage("open", path);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    *error = ErrnoMessage("fstat", path);
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    *error = "snapshot file " + path + " is empty";
    ::close(fd);
    return false;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    *error = ErrnoMessage("mmap", path);
    ::close(fd);
    return false;
  }
  const bool ok =
      ParseSnapshot(static_cast<const uint8_t*>(map), size, out, error);
  if (!ok) *error = path + ": " + *error;
  ::munmap(map, size);
  ::close(fd);
  return ok;
}

}  // namespace loloha

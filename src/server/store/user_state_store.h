// Pluggable per-user session-state backends for the collectors.
//
// The longitudinal protocols force the server to hold one small memo
// record per registered user for the life of the deployment (LOLOHA: the
// user's universal hash coefficients; dBitFlipPM: the sampled bucket
// set). At the millions-of-users scale that table is the collector's
// dominant allocation, so — mirroring the ResultSink move on the output
// side — the table sits behind this interface with three backends:
//
//   MapStore       the default: a node-based hash index over a slot
//                  arena, matching the collector's historical in-memory
//                  behavior.
//   FlatStore      a compact open-addressed table (linear probing over
//                  multiply-shift-ranged Mix64 hashes) with the packed
//                  slots stored inline — roughly half MapStore's
//                  bytes/user (bench_state_store measures it).
//   SnapshotStore  FlatStore plus an mmap-backed checkpoint: every
//                  EndStepCheckpoint() writes the whole table to a
//                  versioned snapshot file (server/store/snapshot_file.h)
//                  so a crashed collector restores with byte-identical
//                  subsequent estimates.
//
// A store is a byte-slot container: the collector owns the slot layout
// and fixes `slot_bytes` at construction (LOLOHA packs the two 61-bit
// hash coefficients into 16 bytes; dBitFlipPM stores its d sampled
// bucket ids as d u32s). The store additionally owns the per-step
// "already reported" flag — one bit per user, cleared in O(users/64) at
// ClearReported() — which is what lets a slot drop the 4-byte step
// counter the old per-user map carried.
//
// Contract: Insert() requires the user to be absent and returns a
// zeroed slot. A returned UserRef (including its `state` pointer) is
// valid only until the next Insert()/Reserve()/restore — the
// open-addressed backends rehash. Estimates never depend on a store's
// iteration or probe order; the only order that escapes (snapshot
// bytes) is sorted by user id.
//
// Thread safety: none. A store belongs to exactly one collector and is
// guarded by that collector's mutex.

#ifndef LOLOHA_SERVER_STORE_USER_STATE_STORE_H_
#define LOLOHA_SERVER_STORE_USER_STATE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "server/store/snapshot_file.h"

namespace loloha {

enum class StoreKind : uint8_t { kMap, kFlat, kSnapshot };

// "map" / "flat" / "snapshot" (the --store= flag values).
const char* StoreKindName(StoreKind kind);
bool ParseStoreKind(const std::string& name, StoreKind* out);

struct StoreConfig {
  StoreKind kind = StoreKind::kMap;
  // SnapshotStore only: the file EndStepCheckpoint() writes. The parent
  // directory must exist; a sharded front derives one path per shard.
  std::string snapshot_path;
  // Pre-size for this many users (0 = grow on demand). Sizing up front
  // pins the open-addressed backends at their target load factor.
  uint64_t reserve_users = 0;
};

// Observability snapshot (surfaces in the server's --stats endpoint).
struct StoreStats {
  StoreKind kind = StoreKind::kMap;
  uint64_t users = 0;
  uint64_t memory_bytes = 0;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t last_checkpoint_bytes = 0;

  friend bool operator==(const StoreStats&, const StoreStats&) = default;
};

// Handle to one user's slot. `state` points at slot_bytes writable
// bytes; `slot` is the backend-internal index the reported-bit calls
// key on. Invalidated by the next Insert()/Reserve()/restore.
struct UserRef {
  uint8_t* state = nullptr;
  uint64_t slot = 0;

  explicit operator bool() const { return state != nullptr; }
};

// What a checkpoint stamps into the snapshot besides the user table.
struct SnapshotContext {
  std::string signature;
  uint32_t step = 0;
  std::string aux;
};

class UserStateStore {
 public:
  explicit UserStateStore(uint32_t slot_bytes) : slot_bytes_(slot_bytes) {}
  virtual ~UserStateStore() = default;

  UserStateStore(const UserStateStore&) = delete;
  UserStateStore& operator=(const UserStateStore&) = delete;

  virtual StoreKind kind() const = 0;
  uint32_t slot_bytes() const { return slot_bytes_; }

  // Null UserRef when absent.
  virtual UserRef Find(uint64_t user_id) = 0;

  // Registers `user_id` (which must be absent) and returns its zeroed
  // slot. Invalidates previously returned UserRefs.
  virtual UserRef Insert(uint64_t user_id) = 0;

  // The per-step dedup flag, keyed on ref.slot.
  virtual bool reported(const UserRef& ref) const = 0;
  virtual void set_reported(const UserRef& ref) = 0;
  // Clears every user's reported flag (the step boundary).
  virtual void ClearReported() = 0;

  virtual uint64_t user_count() const = 0;

  // Accounted resident bytes of the backend, including index overhead
  // (MapStore counts allocator chunk rounding; see MallocChunkBytes).
  virtual uint64_t MemoryBytes() const = 0;

  // Pre-sizes for `users` registrations; existing entries are kept.
  virtual void Reserve(uint64_t users) = 0;

  // Appends every (user_id, slot pointer) pair in unspecified order.
  // Pointers are valid until the next mutation; callers sort before any
  // order can escape (see BuildSnapshotData).
  virtual void Dump(
      std::vector<std::pair<uint64_t, const uint8_t*>>* out) const = 0;

  // Called by the collector after each closed step. SnapshotStore
  // writes its checkpoint file here; the in-memory backends are a
  // successful no-op.
  virtual bool EndStepCheckpoint(const SnapshotContext& context,
                                 std::string* error);

  virtual StoreStats stats() const;

 protected:
  const uint32_t slot_bytes_;
};

// Builds the portable snapshot image of `store` (users sorted by id, so
// the bytes are a pure function of the logical state).
SnapshotData BuildSnapshotData(const UserStateStore& store,
                               const SnapshotContext& context);

// glibc malloc accounting for one heap allocation of `request` bytes
// (8-byte header, 16-byte granularity, 32-byte minimum chunk). MapStore
// charges this per index node so bench_state_store compares real
// resident cost, not sizeof sums.
uint64_t MallocChunkBytes(uint64_t request);

// Factory. SnapshotStore CHECK-fails on an empty snapshot_path.
std::unique_ptr<UserStateStore> MakeUserStateStore(const StoreConfig& config,
                                                   uint32_t slot_bytes);

}  // namespace loloha

#endif  // LOLOHA_SERVER_STORE_USER_STATE_STORE_H_

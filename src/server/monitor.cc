#include "server/monitor.h"

#include <algorithm>
#include <cmath>

#include "oracle/estimator.h"
#include "util/check.h"

namespace loloha {

TrendMonitor::TrendMonitor(uint32_t k, double n, const PerturbParams& first,
                           const PerturbParams& second, double smoothing,
                           double z_threshold)
    : k_(k),
      n_(n),
      first_(first),
      second_(second),
      smoothing_(smoothing),
      z_threshold_(z_threshold),
      baseline_(k, 0.0) {
  LOLOHA_CHECK(k >= 1);
  LOLOHA_CHECK(n > 0.0);
  LOLOHA_CHECK(smoothing > 0.0 && smoothing <= 1.0);
  LOLOHA_CHECK(z_threshold > 0.0);
}

TrendMonitor::TrendMonitor(uint32_t k, double n, const PerturbParams& params,
                           double smoothing, double z_threshold)
    : TrendMonitor(k, n, params,
                   // Degenerate second round: identity within the validity
                   // margins of ValidParams.
                   PerturbParams{1.0 - 1e-12, 1e-12}, smoothing,
                   z_threshold) {
  first_ = params;
}

double TrendMonitor::NoiseStdDev(double f) const {
  const double f_plug = std::clamp(f, 0.0, 1.0);
  return std::sqrt(ExactVariance(n_, f_plug, first_, second_));
}

std::vector<TrendAlert> TrendMonitor::Observe(
    const std::vector<double>& estimates) {
  MutexLock lock(mu_);
  return ObserveLocked(estimates);
}

std::vector<TrendAlert> TrendMonitor::ObserveLocked(
    const std::vector<double>& estimates) {
  LOLOHA_CHECK(estimates.size() == k_);
  std::vector<TrendAlert> alerts;
  if (steps_ == 0) {
    baseline_ = estimates;
    ++steps_;
    return alerts;
  }
  for (uint32_t v = 0; v < k_; ++v) {
    const double sigma = NoiseStdDev(baseline_[v]);
    const double z = (estimates[v] - baseline_[v]) / sigma;
    if (std::fabs(z) >= z_threshold_) {
      alerts.push_back(
          TrendAlert{v, steps_, baseline_[v], estimates[v], z});
    }
    baseline_[v] =
        (1.0 - smoothing_) * baseline_[v] + smoothing_ * estimates[v];
  }
  ++steps_;
  return alerts;
}

std::vector<TrendAlert> TrendMonitor::Observe(
    std::span<const std::vector<double>> steps) {
  // One lock for the whole span: a batched catch-up folds atomically with
  // respect to concurrent single-step observers.
  MutexLock lock(mu_);
  std::vector<TrendAlert> alerts;
  for (const std::vector<double>& estimates : steps) {
    std::vector<TrendAlert> step_alerts = ObserveLocked(estimates);
    alerts.insert(alerts.end(), step_alerts.begin(), step_alerts.end());
  }
  return alerts;
}

}  // namespace loloha

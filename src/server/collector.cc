#include "server/collector.h"

#include "oracle/estimator.h"
#include "wire/encoding.h"

namespace loloha {

LolohaCollector::LolohaCollector(const LolohaParams& params)
    : params_(params), support_(params.k, 0) {}

bool LolohaCollector::HandleHello(uint64_t user_id,
                                  const std::string& bytes) {
  UniversalHash hash;
  if (!DecodeLolohaHello(bytes, params_.g, &hash)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto it = hashes_.find(user_id);
  if (it != hashes_.end()) {
    if (it->second == hash) return true;  // idempotent re-hello
    ++stats_.rejected_duplicate;
    return false;
  }
  hashes_.emplace(user_id, hash);
  ++stats_.hellos_accepted;
  return true;
}

bool LolohaCollector::HandleReport(uint64_t user_id,
                                   const std::string& bytes) {
  const auto it = hashes_.find(user_id);
  if (it == hashes_.end()) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  uint32_t cell = 0;
  if (!DecodeLolohaReport(bytes, params_.g, &cell)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto reported = reported_step_.find(user_id);
  if (reported != reported_step_.end() && reported->second == step_ + 1) {
    ++stats_.rejected_duplicate;
    return false;
  }
  reported_step_[user_id] = step_ + 1;

  const UniversalHash& hash = it->second;
  for (uint32_t v = 0; v < params_.k; ++v) {
    if (hash(v) == cell) ++support_[v];
  }
  ++reports_this_step_;
  ++stats_.reports_accepted;
  return true;
}

std::vector<double> LolohaCollector::EndStep() {
  std::vector<double> estimates;
  if (reports_this_step_ > 0) {
    std::vector<double> counts(support_.begin(), support_.end());
    estimates = EstimateFrequenciesChained(
        counts, static_cast<double>(reports_this_step_),
        params_.EstimatorFirst(), params_.irr);
  }
  support_.assign(params_.k, 0);
  reports_this_step_ = 0;
  ++step_;
  return estimates;
}

DBitFlipCollector::DBitFlipCollector(const Bucketizer& bucketizer, uint32_t d,
                                     double eps_perm)
    : bucketizer_(bucketizer),
      d_(d),
      params_(SueParams(eps_perm)),
      samplers_per_bucket_(bucketizer.b(), 0),
      support_(bucketizer.b(), 0) {
  LOLOHA_CHECK(d >= 1 && d <= bucketizer.b());
}

bool DBitFlipCollector::HandleHello(uint64_t user_id,
                                    const std::string& bytes) {
  std::vector<uint32_t> sampled;
  if (!DecodeDBitHello(bytes, bucketizer_.b(), d_, &sampled)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto it = sampled_.find(user_id);
  if (it != sampled_.end()) {
    if (it->second == sampled) return true;
    ++stats_.rejected_duplicate;
    return false;
  }
  sampled_.emplace(user_id, std::move(sampled));
  ++stats_.hellos_accepted;
  return true;
}

bool DBitFlipCollector::HandleReport(uint64_t user_id,
                                     const std::string& bytes) {
  const auto it = sampled_.find(user_id);
  if (it == sampled_.end()) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  std::vector<uint8_t> bits;
  if (!DecodeDBitReport(bytes, d_, &bits)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto reported = reported_step_.find(user_id);
  if (reported != reported_step_.end() && reported->second == step_ + 1) {
    ++stats_.rejected_duplicate;
    return false;
  }
  reported_step_[user_id] = step_ + 1;

  const std::vector<uint32_t>& sampled = it->second;
  for (uint32_t l = 0; l < d_; ++l) {
    ++samplers_per_bucket_[sampled[l]];
    support_[sampled[l]] += bits[l];
  }
  ++stats_.reports_accepted;
  return true;
}

std::vector<double> DBitFlipCollector::EndStep() {
  const uint32_t b = bucketizer_.b();
  std::vector<double> estimates(b, 0.0);
  for (uint32_t j = 0; j < b; ++j) {
    if (samplers_per_bucket_[j] == 0) continue;
    estimates[j] =
        EstimateFrequency(static_cast<double>(support_[j]),
                          static_cast<double>(samplers_per_bucket_[j]),
                          params_);
  }
  samplers_per_bucket_.assign(b, 0);
  support_.assign(b, 0);
  ++step_;
  return estimates;
}

}  // namespace loloha

#include "server/collector.h"

#include "oracle/estimator.h"
#include "sim/protocol_spec.h"
#include "util/check.h"

namespace loloha {

namespace {

uint32_t ResolveIngestThreads(const CollectorOptions& options) {
  return options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                  : options.num_threads;
}

uint32_t ResolveIngestShards(const CollectorOptions& options) {
  return options.num_shards == 0 ? kDefaultIngestShards : options.num_shards;
}

}  // namespace

void MergeStepAggregate(const StepAggregate& from, StepAggregate* into) {
  if (into->support.empty() && into->samplers.empty() && into->reports == 0) {
    *into = from;
    return;
  }
  LOLOHA_CHECK_MSG(from.support.size() == into->support.size() &&
                       from.samplers.size() == into->samplers.size(),
                   "aggregate shapes differ — collectors built from "
                   "different specs cannot merge");
  for (size_t v = 0; v < from.support.size(); ++v) {
    into->support[v] += from.support[v];
  }
  for (size_t j = 0; j < from.samplers.size(); ++j) {
    into->samplers[j] += from.samplers[j];
  }
  into->reports += from.reports;
}

LolohaCollector::LolohaCollector(const LolohaParams& params,
                                 const CollectorOptions& options)
    : params_(params),
      pool_(options.pool, ResolveIngestThreads(options)),
      num_shards_(ResolveIngestShards(options)),
      support_(params.k, 0),
      shard_support_(num_shards_, params.k) {}

bool LolohaCollector::HandleHello(uint64_t user_id,
                                  const std::string& bytes) {
  MutexLock lock(mu_);
  return HandleHelloLocked(user_id, bytes);
}

bool LolohaCollector::HandleHelloLocked(uint64_t user_id,
                                        const std::string& bytes) {
  UniversalHash hash;
  if (!DecodeLolohaHello(bytes, params_.g, &hash)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto it = hashes_.find(user_id);
  if (it != hashes_.end()) {
    if (it->second == hash) return true;  // idempotent re-hello
    ++stats_.rejected_duplicate;
    return false;
  }
  hashes_.emplace(user_id, hash);
  ++stats_.hellos_accepted;
  return true;
}

bool LolohaCollector::HandleReport(uint64_t user_id,
                                   const std::string& bytes) {
  MutexLock lock(mu_);
  const auto it = hashes_.find(user_id);
  if (it == hashes_.end()) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  uint32_t cell = 0;
  if (!DecodeLolohaReport(bytes, params_.g, &cell)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto reported = reported_step_.find(user_id);
  if (reported != reported_step_.end() && reported->second == step_ + 1) {
    ++stats_.rejected_duplicate;
    return false;
  }
  reported_step_[user_id] = step_ + 1;

  const UniversalHash& hash = it->second;
  for (uint32_t v = 0; v < params_.k; ++v) {
    if (hash(v) == cell) ++support_[v];
  }
  ++reports_this_step_;
  ++stats_.reports_accepted;
  return true;
}

uint64_t LolohaCollector::IngestBatch(std::span<const Message> batch) {
  if (batch.empty()) return 0;

  // Pass 1 — bulk payload validation (pure per message, independent of
  // session state; runs before the lock).
  std::vector<uint32_t> cells(batch.size());
  std::vector<uint8_t> ok(batch.size());
  DecodeLolohaReportBatch(batch, params_.g, cells.data(), ok.data());

  // The whole batch folds atomically: the lock spans bookkeeping and the
  // sharded accumulation, so a concurrent per-report caller observes the
  // batch entirely before or entirely after its own message.
  MutexLock lock(mu_);

  // Pass 2 — serial session bookkeeping in arrival order. Classification
  // per message is exactly HandleHello/HandleReport's: hellos by tag, and
  // for reports unknown-user before malformed before duplicate, so the
  // stats counters match the per-report path message for message.
  pending_.clear();
  uint64_t accepted = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Message& message = batch[i];
    WireType type = WireType::kLolohaHello;
    if (PeekWireType(message.bytes, &type) &&
        type == WireType::kLolohaHello) {
      accepted += HandleHelloLocked(message.user_id, message.bytes) ? 1 : 0;
      continue;
    }
    const auto it = hashes_.find(message.user_id);
    if (it == hashes_.end()) {
      ++stats_.rejected_unknown_user;
      continue;
    }
    if (!ok[i]) {
      ++stats_.rejected_malformed;
      continue;
    }
    const auto reported = reported_step_.find(message.user_id);
    if (reported != reported_step_.end() &&
        reported->second == step_ + 1) {
      ++stats_.rejected_duplicate;
      continue;
    }
    reported_step_[message.user_id] = step_ + 1;
    pending_.push_back(PendingReport{&it->second, cells[i]});
    ++reports_this_step_;
    ++stats_.reports_accepted;
    ++accepted;
  }

  // Pass 3 — sharded support accumulation. Integer adds into disjoint
  // privatized rows: totals are independent of the shard layout, so the
  // merged counts are byte-identical to the per-report fold. The workers
  // receive the guarded state through locals captured while mu_ is held:
  // each shard writes only its own row, pending is read-only, and the
  // ParallelFor barrier sequences every write before the return — the
  // partition plus the barrier stand in for the lock the workers (which
  // run on pool threads, not this one) cannot take.
  if (!pending_.empty()) {
    const uint32_t k = params_.k;
    const uint32_t g = params_.g;
    shard_support_dirty_ = true;
    const std::span<const PendingReport> pending(pending_);
    CacheAlignedRows<uint64_t>& shard_support = shard_support_;
    const uint32_t num_shards = num_shards_;
    pool_->ParallelFor(num_shards, [&, pending](uint32_t shard) {
      const ShardRange range =
          ShardBounds(pending.size(), num_shards, shard);
      if (range.begin == range.end) return;
      uint64_t* wide = shard_support.Row(shard);
      if (g <= 65535) {
        // Hash-row + support-count kernels: one strength-reduced row fill
        // per report, then a SIMD compare against the reported cell
        // (bit-identical to evaluating hash(v) per value).
        std::vector<uint16_t> row(k);
        U16SupportAccumulator acc(k, wide);
        for (uint64_t i = range.begin; i < range.end; ++i) {
          const PendingReport& report = pending[i];
          HashRowU16(report.hash->a(), report.hash->b(), g, k, row.data());
          acc.Add(row.data(), static_cast<uint16_t>(report.cell));
        }
      } else {
        for (uint64_t i = range.begin; i < range.end; ++i) {
          const PendingReport& report = pending[i];
          for (uint32_t v = 0; v < k; ++v) {
            if ((*report.hash)(v) == report.cell) ++wide[v];
          }
        }
      }
    });
    pending_.clear();
  }
  return accepted;
}

void LolohaCollector::MergeShardSupport() {
  if (!shard_support_dirty_) return;
  shard_support_.MergeInto(support_.data());
  shard_support_.Clear();
  shard_support_dirty_ = false;
}

std::vector<double> LolohaCollector::EndStep() {
  return EstimateAggregate(EndStepAggregate());
}

StepAggregate LolohaCollector::EndStepAggregate() {
  MutexLock lock(mu_);
  MergeShardSupport();
  StepAggregate aggregate;
  aggregate.support = std::move(support_);
  aggregate.reports = reports_this_step_;
  support_.assign(params_.k, 0);
  reports_this_step_ = 0;
  ++step_;
  return aggregate;
}

std::vector<double> LolohaCollector::EstimateAggregate(
    const StepAggregate& aggregate) const {
  std::vector<double> estimates;
  if (aggregate.reports > 0) {
    std::vector<double> counts(aggregate.support.begin(),
                               aggregate.support.end());
    estimates = EstimateFrequenciesChained(
        counts, static_cast<double>(aggregate.reports),
        params_.EstimatorFirst(), params_.irr);
  }
  return estimates;
}

DBitFlipCollector::DBitFlipCollector(const Bucketizer& bucketizer, uint32_t d,
                                     double eps_perm,
                                     const CollectorOptions& options)
    : bucketizer_(bucketizer),
      d_(d),
      params_(SueParams(eps_perm)),
      pool_(options.pool, ResolveIngestThreads(options)),
      num_shards_(ResolveIngestShards(options)),
      samplers_per_bucket_(bucketizer.b(), 0),
      support_(bucketizer.b(), 0),
      shard_support_(num_shards_, bucketizer.b()),
      shard_samplers_(num_shards_, bucketizer.b()) {
  LOLOHA_CHECK(d >= 1 && d <= bucketizer.b());
}

bool DBitFlipCollector::HandleHello(uint64_t user_id,
                                    const std::string& bytes) {
  MutexLock lock(mu_);
  return HandleHelloLocked(user_id, bytes);
}

bool DBitFlipCollector::HandleHelloLocked(uint64_t user_id,
                                          const std::string& bytes) {
  std::vector<uint32_t> sampled;
  if (!DecodeDBitHello(bytes, bucketizer_.b(), d_, &sampled)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto it = sampled_.find(user_id);
  if (it != sampled_.end()) {
    if (it->second == sampled) return true;
    ++stats_.rejected_duplicate;
    return false;
  }
  sampled_.emplace(user_id, std::move(sampled));
  ++stats_.hellos_accepted;
  return true;
}

bool DBitFlipCollector::HandleReport(uint64_t user_id,
                                     const std::string& bytes) {
  MutexLock lock(mu_);
  const auto it = sampled_.find(user_id);
  if (it == sampled_.end()) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  std::vector<uint8_t> bits;
  if (!DecodeDBitReport(bytes, d_, &bits)) {
    ++stats_.rejected_malformed;
    return false;
  }
  const auto reported = reported_step_.find(user_id);
  if (reported != reported_step_.end() && reported->second == step_ + 1) {
    ++stats_.rejected_duplicate;
    return false;
  }
  reported_step_[user_id] = step_ + 1;

  const std::vector<uint32_t>& sampled = it->second;
  for (uint32_t l = 0; l < d_; ++l) {
    ++samplers_per_bucket_[sampled[l]];
    support_[sampled[l]] += bits[l];
  }
  ++reports_this_step_;
  ++stats_.reports_accepted;
  return true;
}

uint64_t DBitFlipCollector::IngestBatch(std::span<const Message> batch) {
  if (batch.empty()) return 0;

  // Whole-batch atomicity, as in LolohaCollector::IngestBatch. Taken
  // before pass 1 here: the decode target is the member bits arena.
  MutexLock lock(mu_);

  // Pass 1 — bulk payload validation into the bits arena.
  bits_arena_.assign(batch.size() * d_, 0);
  std::vector<uint8_t> ok(batch.size());
  DecodeDBitReportBatch(batch, d_, bits_arena_.data(), ok.data());

  // Pass 2 — serial session bookkeeping (see LolohaCollector::IngestBatch).
  pending_.clear();
  uint64_t accepted = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Message& message = batch[i];
    WireType type = WireType::kDBitHello;
    if (PeekWireType(message.bytes, &type) && type == WireType::kDBitHello) {
      accepted += HandleHelloLocked(message.user_id, message.bytes) ? 1 : 0;
      continue;
    }
    const auto it = sampled_.find(message.user_id);
    if (it == sampled_.end()) {
      ++stats_.rejected_unknown_user;
      continue;
    }
    if (!ok[i]) {
      ++stats_.rejected_malformed;
      continue;
    }
    const auto reported = reported_step_.find(message.user_id);
    if (reported != reported_step_.end() &&
        reported->second == step_ + 1) {
      ++stats_.rejected_duplicate;
      continue;
    }
    reported_step_[message.user_id] = step_ + 1;
    pending_.push_back(
        PendingReport{&it->second, &bits_arena_[i * d_]});
    ++reports_this_step_;
    ++stats_.reports_accepted;
    ++accepted;
  }

  // Pass 3 — sharded scatter of each report's d bits into privatized
  // support / sampler rows. Guarded state reaches the pool workers via
  // locals captured under mu_ — disjoint rows + the ParallelFor barrier
  // replace the lock (see LolohaCollector::IngestBatch pass 3).
  if (!pending_.empty()) {
    shard_rows_dirty_ = true;
    const std::span<const PendingReport> pending(pending_);
    CacheAlignedRows<uint64_t>& shard_support = shard_support_;
    CacheAlignedRows<uint64_t>& shard_samplers = shard_samplers_;
    const uint32_t num_shards = num_shards_;
    const uint32_t d = d_;
    pool_->ParallelFor(num_shards, [&, pending](uint32_t shard) {
      const ShardRange range =
          ShardBounds(pending.size(), num_shards, shard);
      if (range.begin == range.end) return;
      uint64_t* sup = shard_support.Row(shard);
      uint64_t* samp = shard_samplers.Row(shard);
      for (uint64_t i = range.begin; i < range.end; ++i) {
        const PendingReport& report = pending[i];
        const std::vector<uint32_t>& sampled = *report.sampled;
        for (uint32_t l = 0; l < d; ++l) {
          ++samp[sampled[l]];
          sup[sampled[l]] += report.bits[l];
        }
      }
    });
    pending_.clear();
  }
  return accepted;
}

void DBitFlipCollector::MergeShardRows() {
  if (!shard_rows_dirty_) return;
  shard_support_.MergeInto(support_.data());
  shard_samplers_.MergeInto(samplers_per_bucket_.data());
  shard_support_.Clear();
  shard_samplers_.Clear();
  shard_rows_dirty_ = false;
}

std::vector<double> DBitFlipCollector::EndStep() {
  return EstimateAggregate(EndStepAggregate());
}

StepAggregate DBitFlipCollector::EndStepAggregate() {
  MutexLock lock(mu_);
  MergeShardRows();
  const uint32_t b = bucketizer_.b();
  StepAggregate aggregate;
  aggregate.support = std::move(support_);
  aggregate.samplers = std::move(samplers_per_bucket_);
  aggregate.reports = reports_this_step_;
  samplers_per_bucket_.assign(b, 0);
  support_.assign(b, 0);
  reports_this_step_ = 0;
  ++step_;
  return aggregate;
}

std::vector<double> DBitFlipCollector::EstimateAggregate(
    const StepAggregate& aggregate) const {
  const uint32_t b = bucketizer_.b();
  std::vector<double> estimates(b, 0.0);
  for (uint32_t j = 0; j < b; ++j) {
    if (aggregate.samplers[j] == 0) continue;
    estimates[j] =
        EstimateFrequency(static_cast<double>(aggregate.support[j]),
                          static_cast<double>(aggregate.samplers[j]),
                          params_);
  }
  return estimates;
}

std::unique_ptr<Collector> MakeCollector(const ProtocolSpec& spec, uint32_t k,
                                         const CollectorOptions& options) {
  std::string error;
  LOLOHA_CHECK_MSG(spec.Validate(&error), error.c_str());
  switch (spec.id) {
    case ProtocolId::kBiLoloha:
    case ProtocolId::kOLoloha:
      return std::make_unique<LolohaCollector>(LolohaParamsForSpec(spec, k),
                                               options);
    case ProtocolId::kOneBitFlipPm:
    case ProtocolId::kBBitFlipPm: {
      const uint32_t b = ResolveBuckets(spec, k);
      const uint32_t d = ResolveD(spec, b);
      return std::make_unique<DBitFlipCollector>(Bucketizer(k, b), d,
                                                 spec.eps_perm, options);
    }
    default:
      LOLOHA_CHECK_MSG(false, "no wire collector serves this protocol; "
                              "supported: loloha and dbitflip variants");
      return nullptr;
  }
}

}  // namespace loloha

#include "server/collector.h"

#include <cstdio>
#include <cstring>

#include "oracle/estimator.h"
#include "sim/protocol_spec.h"
#include "util/check.h"
#include "util/hash.h"

namespace loloha {

namespace {

uint32_t ResolveIngestThreads(const CollectorOptions& options) {
  return options.num_threads == 0 ? ThreadPool::HardwareThreads()
                                  : options.num_threads;
}

uint32_t ResolveIngestShards(const CollectorOptions& options) {
  return options.num_shards == 0 ? kDefaultIngestShards : options.num_shards;
}

std::string WithSuffix(std::string signature, const std::string& suffix) {
  if (!suffix.empty()) {
    signature += ' ';
    signature += suffix;
  }
  return signature;
}

// -- slot packing -----------------------------------------------------
// LOLOHA: the user's two hash coefficients, 8 bytes each (both < 2^61;
// the range g is a deployment constant). dBitFlipPM packs its d sampled
// bucket ids as d u32s straight through memcpy in the collector below.

void StoreLolohaSlot(uint8_t* slot, uint64_t a, uint64_t b) {
  std::memcpy(slot, &a, sizeof a);
  std::memcpy(slot + sizeof a, &b, sizeof b);
}

void LoadLolohaSlot(const uint8_t* slot, uint64_t* a, uint64_t* b) {
  std::memcpy(a, slot, sizeof *a);
  std::memcpy(b, slot + sizeof *a, sizeof *b);
}

// -- snapshot aux payload ---------------------------------------------
// The opaque AUX section carries the cumulative CollectorStats so a
// restored collector's counters keep counting from where they were.

constexpr size_t kAuxBytes = 5 * sizeof(uint64_t);

std::string PackCollectorStats(const CollectorStats& stats) {
  const uint64_t fields[5] = {stats.hellos_accepted, stats.reports_accepted,
                              stats.rejected_malformed,
                              stats.rejected_unknown_user,
                              stats.rejected_duplicate};
  return std::string(reinterpret_cast<const char*>(fields), sizeof fields);
}

CollectorStats UnpackCollectorStats(const std::string& aux) {
  uint64_t fields[5];
  std::memcpy(fields, aux.data(), sizeof fields);
  CollectorStats stats;
  stats.hellos_accepted = fields[0];
  stats.reports_accepted = fields[1];
  stats.rejected_malformed = fields[2];
  stats.rejected_unknown_user = fields[3];
  stats.rejected_duplicate = fields[4];
  return stats;
}

// Validates a parsed snapshot against the restoring collector and — only
// after everything checks out — rebuilds a fresh store from its user
// records. Returns the new store's step/stats through the out params;
// on failure nothing is touched.
bool RebuildStoreFromSnapshot(const SnapshotData& data,
                              const std::string& signature,
                              uint32_t slot_bytes, const StoreConfig& config,
                              std::unique_ptr<UserStateStore>* store,
                              uint32_t* step, CollectorStats* stats,
                              std::string* error) {
  if (data.signature != signature) {
    *error = "snapshot signature mismatch: snapshot built for \"" +
             data.signature + "\", this collector is \"" + signature + "\"";
    return false;
  }
  if (data.slot_bytes != slot_bytes) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "snapshot slot width %u, this collector packs %u bytes",
                  data.slot_bytes, slot_bytes);
    *error = buf;
    return false;
  }
  if (data.aux.size() != kAuxBytes) {
    *error = "snapshot AUX section is not a packed CollectorStats";
    return false;
  }
  std::unique_ptr<UserStateStore> rebuilt =
      MakeUserStateStore(config, slot_bytes);
  rebuilt->Reserve(data.user_ids.size());
  for (size_t i = 0; i < data.user_ids.size(); ++i) {
    const UserRef ref = rebuilt->Insert(data.user_ids[i]);
    std::memcpy(ref.state, data.slots.data() + i * size_t{slot_bytes},
                slot_bytes);
  }
  *store = std::move(rebuilt);
  *step = data.step;
  *stats = UnpackCollectorStats(data.aux);
  return true;
}

}  // namespace

void MergeStepAggregate(const StepAggregate& from, StepAggregate* into) {
  if (into->support.empty() && into->samplers.empty() && into->reports == 0) {
    *into = from;
    return;
  }
  LOLOHA_CHECK_MSG(from.support.size() == into->support.size() &&
                       from.samplers.size() == into->samplers.size(),
                   "aggregate shapes differ — collectors built from "
                   "different specs cannot merge");
  for (size_t v = 0; v < from.support.size(); ++v) {
    into->support[v] += from.support[v];
  }
  for (size_t j = 0; j < from.samplers.size(); ++j) {
    into->samplers[j] += from.samplers[j];
  }
  into->reports += from.reports;
}

LolohaCollector::LolohaCollector(const LolohaParams& params,
                                 const CollectorOptions& options)
    : params_(params),
      pool_(options.pool, ResolveIngestThreads(options)),
      num_shards_(ResolveIngestShards(options)),
      store_config_(options.store),
      store_(MakeUserStateStore(store_config_, kSlotBytes)),
      support_(params.k, 0),
      shard_support_(num_shards_, params.k) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "loloha k=%u g=%u eps_perm=%.17g eps_first=%.17g", params_.k,
                params_.g, params_.eps_perm, params_.eps_first);
  signature_ = WithSuffix(buf, options.signature_suffix);
}

bool LolohaCollector::HandleHello(uint64_t user_id,
                                  const std::string& bytes) {
  MutexLock lock(mu_);
  return HandleHelloLocked(user_id, bytes);
}

bool LolohaCollector::HandleHelloLocked(uint64_t user_id,
                                        const std::string& bytes) {
  UniversalHash hash;
  if (!DecodeLolohaHello(bytes, params_.g, &hash)) {
    ++stats_.rejected_malformed;
    return false;
  }
  if (const UserRef ref = store_->Find(user_id)) {
    uint64_t a = 0;
    uint64_t b = 0;
    LoadLolohaSlot(ref.state, &a, &b);
    if (a == hash.a() && b == hash.b()) return true;  // idempotent re-hello
    ++stats_.rejected_duplicate;
    return false;
  }
  const UserRef ref = store_->Insert(user_id);
  StoreLolohaSlot(ref.state, hash.a(), hash.b());
  ++stats_.hellos_accepted;
  return true;
}

bool LolohaCollector::HandleReport(uint64_t user_id,
                                   const std::string& bytes) {
  MutexLock lock(mu_);
  const UserRef ref = store_->Find(user_id);
  if (!ref) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  uint32_t cell = 0;
  if (!DecodeLolohaReport(bytes, params_.g, &cell)) {
    ++stats_.rejected_malformed;
    return false;
  }
  if (store_->reported(ref)) {
    ++stats_.rejected_duplicate;
    return false;
  }
  store_->set_reported(ref);

  uint64_t a = 0;
  uint64_t b = 0;
  LoadLolohaSlot(ref.state, &a, &b);
  const UniversalHash hash(a, b, params_.g);
  for (uint32_t v = 0; v < params_.k; ++v) {
    if (hash(v) == cell) ++support_[v];
  }
  ++reports_this_step_;
  ++stats_.reports_accepted;
  return true;
}

uint64_t LolohaCollector::IngestBatch(std::span<const Message> batch) {
  if (batch.empty()) return 0;

  // Pass 1 — bulk payload validation (pure per message, independent of
  // session state; runs before the lock).
  std::vector<uint32_t> cells(batch.size());
  std::vector<uint8_t> ok(batch.size());
  DecodeLolohaReportBatch(batch, params_.g, cells.data(), ok.data());

  // The whole batch folds atomically: the lock spans bookkeeping and the
  // sharded accumulation, so a concurrent per-report caller observes the
  // batch entirely before or entirely after its own message.
  MutexLock lock(mu_);

  // Pass 2 — serial session bookkeeping in arrival order. Classification
  // per message is exactly HandleHello/HandleReport's: hellos by tag, and
  // for reports unknown-user before malformed before duplicate, so the
  // stats counters match the per-report path message for message. The
  // hash coefficients are copied out of the slot: a later hello in the
  // same batch may rehash the store.
  pending_.clear();
  uint64_t accepted = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Message& message = batch[i];
    WireType type = WireType::kLolohaHello;
    if (PeekWireType(message.bytes, &type) &&
        type == WireType::kLolohaHello) {
      accepted += HandleHelloLocked(message.user_id, message.bytes) ? 1 : 0;
      continue;
    }
    const UserRef ref = store_->Find(message.user_id);
    if (!ref) {
      ++stats_.rejected_unknown_user;
      continue;
    }
    if (!ok[i]) {
      ++stats_.rejected_malformed;
      continue;
    }
    if (store_->reported(ref)) {
      ++stats_.rejected_duplicate;
      continue;
    }
    store_->set_reported(ref);
    PendingReport report;
    LoadLolohaSlot(ref.state, &report.a, &report.b);
    report.cell = cells[i];
    pending_.push_back(report);
    ++reports_this_step_;
    ++stats_.reports_accepted;
    ++accepted;
  }

  // Pass 3 — sharded support accumulation. Integer adds into disjoint
  // privatized rows: totals are independent of the shard layout, so the
  // merged counts are byte-identical to the per-report fold. The workers
  // receive the guarded state through locals captured while mu_ is held:
  // each shard writes only its own row, pending is read-only, and the
  // ParallelFor barrier sequences every write before the return — the
  // partition plus the barrier stand in for the lock the workers (which
  // run on pool threads, not this one) cannot take.
  if (!pending_.empty()) {
    const uint32_t k = params_.k;
    const uint32_t g = params_.g;
    shard_support_dirty_ = true;
    const std::span<const PendingReport> pending(pending_);
    CacheAlignedRows<uint64_t>& shard_support = shard_support_;
    const uint32_t num_shards = num_shards_;
    pool_->ParallelFor(num_shards, [&, pending](uint32_t shard) {
      const ShardRange range =
          ShardBounds(pending.size(), num_shards, shard);
      if (range.begin == range.end) return;
      uint64_t* wide = shard_support.Row(shard);
      if (g <= 65535) {
        // Hash-row + support-count kernels: one strength-reduced row fill
        // per report, then a SIMD compare against the reported cell
        // (bit-identical to evaluating hash(v) per value).
        std::vector<uint16_t> row(k);
        U16SupportAccumulator acc(k, wide);
        for (uint64_t i = range.begin; i < range.end; ++i) {
          const PendingReport& report = pending[i];
          HashRowU16(report.a, report.b, g, k, row.data());
          acc.Add(row.data(), static_cast<uint16_t>(report.cell));
        }
      } else {
        for (uint64_t i = range.begin; i < range.end; ++i) {
          const PendingReport& report = pending[i];
          const UniversalHash hash(report.a, report.b, g);
          for (uint32_t v = 0; v < k; ++v) {
            if (hash(v) == report.cell) ++wide[v];
          }
        }
      }
    });
    pending_.clear();
  }
  return accepted;
}

void LolohaCollector::MergeShardSupport() {
  if (!shard_support_dirty_) return;
  shard_support_.MergeInto(support_.data());
  shard_support_.Clear();
  shard_support_dirty_ = false;
}

void LolohaCollector::CheckpointLocked() {
  std::string error;
  if (!store_->EndStepCheckpoint(
          SnapshotContext{signature_, step_, PackCollectorStats(stats_)},
          &error)) {
    std::fprintf(stderr, "loloha collector: checkpoint failed: %s\n",
                 error.c_str());
  }
}

std::vector<double> LolohaCollector::EndStep() {
  return EstimateAggregate(EndStepAggregate());
}

StepAggregate LolohaCollector::EndStepAggregate() {
  MutexLock lock(mu_);
  MergeShardSupport();
  StepAggregate aggregate;
  aggregate.support = std::move(support_);
  aggregate.reports = reports_this_step_;
  support_.assign(params_.k, 0);
  reports_this_step_ = 0;
  ++step_;
  store_->ClearReported();
  CheckpointLocked();
  return aggregate;
}

std::vector<double> LolohaCollector::EstimateAggregate(
    const StepAggregate& aggregate) const {
  std::vector<double> estimates;
  if (aggregate.reports > 0) {
    std::vector<double> counts(aggregate.support.begin(),
                               aggregate.support.end());
    estimates = EstimateFrequenciesChained(
        counts, static_cast<double>(aggregate.reports),
        params_.EstimatorFirst(), params_.irr);
  }
  return estimates;
}

bool LolohaCollector::SaveSnapshot(const std::string& path,
                                   std::string* error) {
  MutexLock lock(mu_);
  return WriteSnapshotFile(
      path,
      BuildSnapshotData(*store_, SnapshotContext{signature_, step_,
                                                 PackCollectorStats(stats_)}),
      error);
}

bool LolohaCollector::RestoreSnapshot(const std::string& path,
                                      std::string* error) {
  SnapshotData data;
  if (!ReadSnapshotFile(path, &data, error)) return false;
  MutexLock lock(mu_);
  if (!RebuildStoreFromSnapshot(data, signature_, kSlotBytes, store_config_,
                                &store_, &step_, &stats_, error)) {
    return false;
  }
  support_.assign(params_.k, 0);
  shard_support_.Clear();
  shard_support_dirty_ = false;
  reports_this_step_ = 0;
  pending_.clear();
  return true;
}

DBitFlipCollector::DBitFlipCollector(const Bucketizer& bucketizer, uint32_t d,
                                     double eps_perm,
                                     const CollectorOptions& options)
    : bucketizer_(bucketizer),
      d_(d),
      eps_perm_(eps_perm),
      params_(SueParams(eps_perm)),
      pool_(options.pool, ResolveIngestThreads(options)),
      num_shards_(ResolveIngestShards(options)),
      store_config_(options.store),
      store_(MakeUserStateStore(store_config_, d * sizeof(uint32_t))),
      samplers_per_bucket_(bucketizer.b(), 0),
      support_(bucketizer.b(), 0),
      shard_support_(num_shards_, bucketizer.b()),
      shard_samplers_(num_shards_, bucketizer.b()) {
  LOLOHA_CHECK(d >= 1 && d <= bucketizer.b());
  char buf[128];
  std::snprintf(buf, sizeof buf, "dbitflip k=%u b=%u d=%u eps_perm=%.17g",
                bucketizer_.k(), bucketizer_.b(), d_, eps_perm_);
  signature_ = WithSuffix(buf, options.signature_suffix);
}

bool DBitFlipCollector::HandleHello(uint64_t user_id,
                                    const std::string& bytes) {
  MutexLock lock(mu_);
  return HandleHelloLocked(user_id, bytes);
}

bool DBitFlipCollector::HandleHelloLocked(uint64_t user_id,
                                          const std::string& bytes) {
  std::vector<uint32_t> sampled;
  if (!DecodeDBitHello(bytes, bucketizer_.b(), d_, &sampled)) {
    ++stats_.rejected_malformed;
    return false;
  }
  if (const UserRef ref = store_->Find(user_id)) {
    if (std::memcmp(ref.state, sampled.data(), slot_bytes()) == 0) {
      return true;  // idempotent re-hello
    }
    ++stats_.rejected_duplicate;
    return false;
  }
  const UserRef ref = store_->Insert(user_id);
  std::memcpy(ref.state, sampled.data(), slot_bytes());
  ++stats_.hellos_accepted;
  return true;
}

bool DBitFlipCollector::HandleReport(uint64_t user_id,
                                     const std::string& bytes) {
  MutexLock lock(mu_);
  const UserRef ref = store_->Find(user_id);
  if (!ref) {
    ++stats_.rejected_unknown_user;
    return false;
  }
  std::vector<uint8_t> bits;
  if (!DecodeDBitReport(bytes, d_, &bits)) {
    ++stats_.rejected_malformed;
    return false;
  }
  if (store_->reported(ref)) {
    ++stats_.rejected_duplicate;
    return false;
  }
  store_->set_reported(ref);

  for (uint32_t l = 0; l < d_; ++l) {
    uint32_t bucket = 0;
    std::memcpy(&bucket, ref.state + l * sizeof(uint32_t), sizeof bucket);
    ++samplers_per_bucket_[bucket];
    support_[bucket] += bits[l];
  }
  ++reports_this_step_;
  ++stats_.reports_accepted;
  return true;
}

uint64_t DBitFlipCollector::IngestBatch(std::span<const Message> batch) {
  if (batch.empty()) return 0;

  // Whole-batch atomicity, as in LolohaCollector::IngestBatch. Taken
  // before pass 1 here: the decode target is the member bits arena.
  MutexLock lock(mu_);

  // Pass 1 — bulk payload validation into the bits arena.
  bits_arena_.assign(batch.size() * d_, 0);
  std::vector<uint8_t> ok(batch.size());
  DecodeDBitReportBatch(batch, d_, bits_arena_.data(), ok.data());

  // Pass 2 — serial session bookkeeping (see LolohaCollector::IngestBatch).
  // Accepted reports copy their sampled set out of the slot into the
  // sampled arena: a later hello in the same batch may rehash the store,
  // and both arenas are sized up front so the pending pointers hold.
  sampled_arena_.assign(batch.size() * d_, 0);
  pending_.clear();
  uint64_t accepted = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const Message& message = batch[i];
    WireType type = WireType::kDBitHello;
    if (PeekWireType(message.bytes, &type) && type == WireType::kDBitHello) {
      accepted += HandleHelloLocked(message.user_id, message.bytes) ? 1 : 0;
      continue;
    }
    const UserRef ref = store_->Find(message.user_id);
    if (!ref) {
      ++stats_.rejected_unknown_user;
      continue;
    }
    if (!ok[i]) {
      ++stats_.rejected_malformed;
      continue;
    }
    if (store_->reported(ref)) {
      ++stats_.rejected_duplicate;
      continue;
    }
    store_->set_reported(ref);
    uint32_t* sampled = &sampled_arena_[i * d_];
    std::memcpy(sampled, ref.state, slot_bytes());
    pending_.push_back(PendingReport{sampled, &bits_arena_[i * d_]});
    ++reports_this_step_;
    ++stats_.reports_accepted;
    ++accepted;
  }

  // Pass 3 — sharded scatter of each report's d bits into privatized
  // support / sampler rows. Guarded state reaches the pool workers via
  // locals captured under mu_ — disjoint rows + the ParallelFor barrier
  // replace the lock (see LolohaCollector::IngestBatch pass 3).
  if (!pending_.empty()) {
    shard_rows_dirty_ = true;
    const std::span<const PendingReport> pending(pending_);
    CacheAlignedRows<uint64_t>& shard_support = shard_support_;
    CacheAlignedRows<uint64_t>& shard_samplers = shard_samplers_;
    const uint32_t num_shards = num_shards_;
    const uint32_t d = d_;
    pool_->ParallelFor(num_shards, [&, pending](uint32_t shard) {
      const ShardRange range =
          ShardBounds(pending.size(), num_shards, shard);
      if (range.begin == range.end) return;
      uint64_t* sup = shard_support.Row(shard);
      uint64_t* samp = shard_samplers.Row(shard);
      for (uint64_t i = range.begin; i < range.end; ++i) {
        const PendingReport& report = pending[i];
        for (uint32_t l = 0; l < d; ++l) {
          ++samp[report.sampled[l]];
          sup[report.sampled[l]] += report.bits[l];
        }
      }
    });
    pending_.clear();
  }
  return accepted;
}

void DBitFlipCollector::MergeShardRows() {
  if (!shard_rows_dirty_) return;
  shard_support_.MergeInto(support_.data());
  shard_samplers_.MergeInto(samplers_per_bucket_.data());
  shard_support_.Clear();
  shard_samplers_.Clear();
  shard_rows_dirty_ = false;
}

void DBitFlipCollector::CheckpointLocked() {
  std::string error;
  if (!store_->EndStepCheckpoint(
          SnapshotContext{signature_, step_, PackCollectorStats(stats_)},
          &error)) {
    std::fprintf(stderr, "dbitflip collector: checkpoint failed: %s\n",
                 error.c_str());
  }
}

std::vector<double> DBitFlipCollector::EndStep() {
  return EstimateAggregate(EndStepAggregate());
}

StepAggregate DBitFlipCollector::EndStepAggregate() {
  MutexLock lock(mu_);
  MergeShardRows();
  const uint32_t b = bucketizer_.b();
  StepAggregate aggregate;
  aggregate.support = std::move(support_);
  aggregate.samplers = std::move(samplers_per_bucket_);
  aggregate.reports = reports_this_step_;
  samplers_per_bucket_.assign(b, 0);
  support_.assign(b, 0);
  reports_this_step_ = 0;
  ++step_;
  store_->ClearReported();
  CheckpointLocked();
  return aggregate;
}

std::vector<double> DBitFlipCollector::EstimateAggregate(
    const StepAggregate& aggregate) const {
  const uint32_t b = bucketizer_.b();
  std::vector<double> estimates(b, 0.0);
  for (uint32_t j = 0; j < b; ++j) {
    if (aggregate.samplers[j] == 0) continue;
    estimates[j] =
        EstimateFrequency(static_cast<double>(aggregate.support[j]),
                          static_cast<double>(aggregate.samplers[j]),
                          params_);
  }
  return estimates;
}

bool DBitFlipCollector::SaveSnapshot(const std::string& path,
                                     std::string* error) {
  MutexLock lock(mu_);
  return WriteSnapshotFile(
      path,
      BuildSnapshotData(*store_, SnapshotContext{signature_, step_,
                                                 PackCollectorStats(stats_)}),
      error);
}

bool DBitFlipCollector::RestoreSnapshot(const std::string& path,
                                        std::string* error) {
  SnapshotData data;
  if (!ReadSnapshotFile(path, &data, error)) return false;
  MutexLock lock(mu_);
  if (!RebuildStoreFromSnapshot(data, signature_, slot_bytes(),
                                store_config_, &store_, &step_, &stats_,
                                error)) {
    return false;
  }
  const uint32_t b = bucketizer_.b();
  samplers_per_bucket_.assign(b, 0);
  support_.assign(b, 0);
  shard_support_.Clear();
  shard_samplers_.Clear();
  shard_rows_dirty_ = false;
  reports_this_step_ = 0;
  pending_.clear();
  return true;
}

std::unique_ptr<Collector> MakeCollector(const ProtocolSpec& spec, uint32_t k,
                                         const CollectorOptions& options) {
  std::string error;
  LOLOHA_CHECK_MSG(spec.Validate(&error), error.c_str());
  switch (spec.id) {
    case ProtocolId::kBiLoloha:
    case ProtocolId::kOLoloha:
      return std::make_unique<LolohaCollector>(LolohaParamsForSpec(spec, k),
                                               options);
    case ProtocolId::kOneBitFlipPm:
    case ProtocolId::kBBitFlipPm: {
      const uint32_t b = ResolveBuckets(spec, k);
      const uint32_t d = ResolveD(spec, b);
      return std::make_unique<DBitFlipCollector>(Bucketizer(k, b), d,
                                                 spec.eps_perm, options);
    }
    default:
      LOLOHA_CHECK_MSG(false, "no wire collector serves this protocol; "
                              "supported: loloha and dbitflip variants");
      return nullptr;
  }
}

}  // namespace loloha

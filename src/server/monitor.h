// Population-trend monitoring on top of the per-step estimates — the
// downstream consumer a telemetry deployment actually runs ("did usage of
// feature v shift this week, or is that LDP noise?").
//
// The monitor keeps an exponentially-weighted moving average per value and
// flags a change when the new estimate departs from the EWMA by more than
// `z_threshold` standard deviations of the *estimator noise* (Eq. 4/5 at
// the current estimate). Because the noise floor is derived from the
// protocol parameters rather than fitted, the false-positive rate is
// directly controlled by the z threshold.
//
// Thread safety: internally synchronized. The EWMA state is guarded by a
// mutex (compile-time checked under clang, see util/thread_annotations.h),
// so several ingestion fronts may feed one monitor; each Observe call —
// including the whole span of a batched call — folds atomically.

#ifndef LOLOHA_SERVER_MONITOR_H_
#define LOLOHA_SERVER_MONITOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "oracle/params.h"
#include "util/thread_annotations.h"

namespace loloha {

struct TrendAlert {
  uint32_t value = 0;     // which histogram bin
  uint32_t step = 0;      // collection step of the alert
  double baseline = 0.0;  // EWMA before the step
  double estimate = 0.0;  // the step's estimate
  double z_score = 0.0;   // departure in noise standard deviations

  friend bool operator==(const TrendAlert&, const TrendAlert&) = default;
};

class TrendMonitor {
 public:
  // `first`/`second` are the protocol's estimator-side rounds (use the
  // one-round constructor for single-round protocols); `n` the expected
  // reports per step. `smoothing` in (0, 1] is the EWMA weight of the
  // newest step; `z_threshold` the alert level (e.g. 4.0).
  TrendMonitor(uint32_t k, double n, const PerturbParams& first,
               const PerturbParams& second, double smoothing,
               double z_threshold);

  // One-round protocols: pass a degenerate second round internally.
  TrendMonitor(uint32_t k, double n, const PerturbParams& params,
               double smoothing, double z_threshold);

  // Feeds one step of estimates; returns the alerts it triggered. The
  // first step only initializes the baseline.
  std::vector<TrendAlert> Observe(const std::vector<double>& estimates);

  // Batched observation — the shape the batched collector produces when a
  // server catches up on several closed steps at once. Equivalent to
  // calling the single-step overload on each row in order; the returned
  // alerts are concatenated in step order.
  std::vector<TrendAlert> Observe(std::span<const std::vector<double>> steps);

  // Snapshot of the current smoothed baseline per value (by value: the
  // live EWMA keeps moving under concurrent Observe calls).
  std::vector<double> baseline() const {
    MutexLock lock(mu_);
    return baseline_;
  }

  uint32_t steps_observed() const {
    MutexLock lock(mu_);
    return steps_;
  }

  // The noise standard deviation the monitor assumes for an estimate at
  // frequency f (exposed for tests and threshold tuning). Pure in the
  // protocol parameters — no lock involved.
  double NoiseStdDev(double f) const;

 private:
  std::vector<TrendAlert> ObserveLocked(const std::vector<double>& estimates)
      LOLOHA_REQUIRES(mu_);

  uint32_t k_;
  double n_;
  PerturbParams first_;
  PerturbParams second_;
  double smoothing_;
  double z_threshold_;
  mutable Mutex mu_{lock_rank::kTrendMonitor};
  std::vector<double> baseline_ LOLOHA_GUARDED_BY(mu_);
  uint32_t steps_ LOLOHA_GUARDED_BY(mu_) = 0;
};

}  // namespace loloha

#endif  // LOLOHA_SERVER_MONITOR_H_

// Streaming collection services: the server-side glue a deployment runs.
//
// A collector consumes wire-encoded messages (see wire/encoding.h),
// validates them, tracks per-user sessions, rejects duplicates and
// malformed input, and produces per-step frequency estimates. All
// aggregation is streaming — a report is folded into the support counts
// on arrival and never stored.
//
// Both collectors implement the protocol-agnostic `Collector` interface:
// `LolohaCollector` (the paper's protocol; users send one hello carrying
// their hash, then one cell per step) and `DBitFlipCollector` (hello
// carries the sampled bucket set, then d bits per step). Deployments
// construct them from a declarative ProtocolSpec via MakeCollector(), so
// ingestion glue (batchers, transport fronts) never names a concrete
// collector type.
//
// Two ingestion paths produce byte-identical stats and estimates:
//
//   * HandleHello / HandleReport — one message at a time (the original
//     scalar path; still the right call for trickle traffic).
//   * IngestBatch — a span of sender-tagged messages. Payloads are
//     validated/decoded in bulk (wire/encoding.h batch decoders), session
//     bookkeeping runs serially in arrival order (so rejection counters
//     match the per-report path message for message), and the accepted
//     reports are sharded across the borrowed thread pool, accumulating
//     support counts through the SIMD kernels (util/simd.h) into
//     per-shard cache-line-privatized rows that EndStep() merges.
//
// Session state lives behind the pluggable `UserStateStore` interface
// (server/store/user_state_store.h): CollectorOptions::store selects the
// backend — the default node-map, the compact open-addressed flat table,
// or the mmap-checkpointing snapshot store. Estimates, stats, and
// rejection counters are byte-identical across backends; the
// snapshot-backed collector additionally writes a recovery checkpoint at
// every step boundary, and SaveSnapshot()/RestoreSnapshot() move a
// collector's whole session state through the portable snapshot format
// regardless of backend.
//
// Thread safety: collectors are internally synchronized. Session state
// and counters are guarded by one per-collector mutex (Clang Thread
// Safety Analysis enforces the discipline at compile time — see
// util/thread_annotations.h), so concurrent connections may call
// HandleHello / HandleReport / IngestBatch on the same collector; calls
// serialize in lock-acquisition order. The sharded accumulation inside
// IngestBatch runs while the batch lock is held: pool workers write only
// disjoint per-shard rows and the ParallelFor barrier orders them before
// the merge, so the rows themselves need no lock.

#ifndef LOLOHA_SERVER_COLLECTOR_H_
#define LOLOHA_SERVER_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "server/store/user_state_store.h"
#include "util/simd.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "wire/encoding.h"

namespace loloha {

struct ProtocolSpec;

// Why a message was rejected (for observability; counters are cumulative).
struct CollectorStats {
  uint64_t hellos_accepted = 0;
  uint64_t reports_accepted = 0;
  uint64_t rejected_malformed = 0;
  uint64_t rejected_unknown_user = 0;
  uint64_t rejected_duplicate = 0;

  friend bool operator==(const CollectorStats&,
                         const CollectorStats&) = default;
};

// Raw integer accumulators of one closed collection step. Exposed so a
// sharded front (N collectors partitioned by user id — see
// server/net/ingest_server.h) can combine steps across shards exactly:
// every field is an integer sum, so element-wise addition is associative
// and estimating the merged aggregate is byte-identical to a single
// collector fed the union of the shards' traffic.
struct StepAggregate {
  // Per-value (LOLOHA) or per-bucket (dBitFlipPM) support sums.
  std::vector<uint64_t> support;
  // dBitFlipPM: reporters sampling each bucket (n_j). Empty for LOLOHA.
  std::vector<uint64_t> samplers;
  // Reports accepted into the step.
  uint64_t reports = 0;

  friend bool operator==(const StepAggregate&,
                         const StepAggregate&) = default;
};

// Element-wise sum of `from` into `into`. An empty `into` adopts `from`'s
// shape; shapes must otherwise match (CHECK-enforced).
void MergeStepAggregate(const StepAggregate& from, StepAggregate* into);

// Shard count used when CollectorOptions::num_shards is 0.
inline constexpr uint32_t kDefaultIngestShards = 16;

// Threading + storage knobs for a collector (RunnerOptions-style). The
// per-report path never touches the pool.
struct CollectorOptions {
  // Borrowed process-wide pool (not owned; must outlive the collector).
  // When null, the collector constructs a private num_threads-wide pool.
  ThreadPool* pool = nullptr;
  // Fallback pool width when `pool` is null (0 = hardware threads). A
  // width of 1 spawns no worker threads.
  uint32_t num_threads = 1;
  // Shards per batch (0 = kDefaultIngestShards). Unlike the simulation
  // runners there is no RNG here, so the shard count never affects the
  // counts — only how the work spreads over the pool.
  uint32_t num_shards = 0;
  // Session-state backend (server/store/user_state_store.h). The default
  // MapStore matches the historical in-memory behavior; estimates and
  // counters are byte-identical across backends.
  StoreConfig store;
  // Appended to the snapshot signature. A sharded front sets
  // "shard=i/N" so a shard's snapshot cannot restore into a collector
  // serving a different shard or shard count.
  std::string signature_suffix;
};

// The server-side service surface, independent of which protocol's wire
// messages it consumes. Every implementation keeps two ingestion paths
// that produce byte-identical stats and estimates (see the file comment).
class Collector {
 public:
  virtual ~Collector() = default;

  // Registers a user's one-time protocol state. Rejects malformed bytes
  // and re-registration with *different* state (idempotent on identical).
  virtual bool HandleHello(uint64_t user_id, const std::string& bytes) = 0;

  // Folds one step report into the current step. Rejects unknown users,
  // malformed bytes, and second reports within the same step.
  virtual bool HandleReport(uint64_t user_id, const std::string& bytes) = 0;

  // Batched ingestion: message for message and counter for counter
  // equivalent to dispatching each message through HandleHello (by hello
  // tag) or HandleReport (any other payload) in order, but the accepted
  // reports' accumulation runs sharded on the pool. Returns the number of
  // accepted messages. A batch never spans a step boundary — call
  // EndStep() between steps as usual.
  virtual uint64_t IngestBatch(std::span<const Message> batch) = 0;

  // Closes the current step and returns its estimates. Resets per-step
  // state. Equivalent — byte for byte — to
  // EstimateAggregate(EndStepAggregate()).
  virtual std::vector<double> EndStep() = 0;

  // Closes the current step like EndStep() but returns the raw integer
  // accumulators instead of estimates, so a sharded deployment can sum
  // aggregates across collectors (MergeStepAggregate) before estimating.
  // Closing a step is also the checkpoint boundary: a snapshot-backed
  // store writes its recovery file here.
  virtual StepAggregate EndStepAggregate() = 0;

  // The estimator fold over a (possibly merged) aggregate. Pure in the
  // construction parameters — takes no lock, never touches step state.
  virtual std::vector<double> EstimateAggregate(
      const StepAggregate& aggregate) const = 0;

  // Writes a portable snapshot of the whole session state (registered
  // users, step index, cumulative stats) to `path`, regardless of which
  // backend holds it. Users are sorted by id, so the bytes are a pure
  // function of the logical state. Call between steps — like a
  // checkpoint, a snapshot never contains a half-open step.
  virtual bool SaveSnapshot(const std::string& path, std::string* error) = 0;

  // Restores session state, step index, and cumulative stats from a
  // snapshot written by SaveSnapshot() or a SnapshotStore checkpoint.
  // Everything is validated before anything mutates — file format, CRCs,
  // config signature, slot width — so on failure the collector is
  // unchanged and *error says why; a torn or tampered snapshot is never
  // silently loaded. Works on any backend: snapshots are portable
  // artifacts, e.g. a MapStore collector's save restores into a
  // FlatStore collector.
  virtual bool RestoreSnapshot(const std::string& path,
                               std::string* error) = 0;

  // The config signature embedded in snapshots (protocol family +
  // parameters + CollectorOptions::signature_suffix).
  virtual std::string SnapshotSignature() const = 0;

  // Steps closed so far — also the step index a snapshot written now
  // would resume at (a restored collector reports the snapshot's step).
  virtual uint32_t current_step() const = 0;

  // Snapshot of the cumulative counters (by value: the live counters are
  // mutex-guarded and keep moving under concurrent ingestion).
  virtual CollectorStats stats() const = 0;
  virtual uint64_t registered_users() const = 0;

  // Backend observability: kind, user count, accounted bytes, checkpoint
  // counters (see StoreStats).
  virtual StoreStats store_stats() const = 0;
};

class LolohaCollector : public Collector {
 public:
  // Packed per-user slot: the two 61-bit universal-hash coefficients
  // (the hash range g is a deployment constant, not per-user state).
  static constexpr uint32_t kSlotBytes = 16;

  explicit LolohaCollector(const LolohaParams& params,
                           const CollectorOptions& options = {});

  bool HandleHello(uint64_t user_id, const std::string& bytes) override;

  bool HandleReport(uint64_t user_id, const std::string& bytes) override;

  // The accepted reports' O(k) support scans run through the hash-row +
  // support-count SIMD kernels.
  uint64_t IngestBatch(std::span<const Message> batch) override;

  // Returns an empty vector if no reports arrived this step.
  std::vector<double> EndStep() override;

  StepAggregate EndStepAggregate() override;
  std::vector<double> EstimateAggregate(
      const StepAggregate& aggregate) const override;

  bool SaveSnapshot(const std::string& path, std::string* error) override;
  bool RestoreSnapshot(const std::string& path, std::string* error) override;
  std::string SnapshotSignature() const override { return signature_; }

  uint64_t reports_this_step() const {
    MutexLock lock(mu_);
    return reports_this_step_;
  }
  uint32_t current_step() const override {
    MutexLock lock(mu_);
    return step_;
  }
  uint64_t registered_users() const override {
    MutexLock lock(mu_);
    return store_->user_count();
  }
  CollectorStats stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }
  StoreStats store_stats() const override {
    MutexLock lock(mu_);
    return store_->stats();
  }

 private:
  // One accepted (but not yet accumulated) batch report. Holds the hash
  // coefficients by value: store slots may move on a same-batch Insert.
  struct PendingReport {
    uint64_t a = 0;
    uint64_t b = 0;
    uint32_t cell = 0;
  };

  bool HandleHelloLocked(uint64_t user_id, const std::string& bytes)
      LOLOHA_REQUIRES(mu_);
  void CheckpointLocked() LOLOHA_REQUIRES(mu_);
  void MergeShardSupport() LOLOHA_REQUIRES(mu_);

  LolohaParams params_;
  PoolLease pool_;
  uint32_t num_shards_;
  StoreConfig store_config_;
  std::string signature_;
  mutable Mutex mu_{lock_rank::kCollector};
  std::unique_ptr<UserStateStore> store_ LOLOHA_GUARDED_BY(mu_);
  uint32_t step_ LOLOHA_GUARDED_BY(mu_) = 0;
  uint64_t reports_this_step_ LOLOHA_GUARDED_BY(mu_) = 0;
  std::vector<uint64_t> support_ LOLOHA_GUARDED_BY(mu_);
  // Per-shard privatized support rows filled by IngestBatch, merged into
  // support_ by EndStep(). Guarded by mu_ between batches; within one
  // IngestBatch (which holds mu_ throughout) the pool workers write
  // disjoint rows behind the ParallelFor barrier.
  CacheAlignedRows<uint64_t> shard_support_ LOLOHA_GUARDED_BY(mu_);
  bool shard_support_dirty_ LOLOHA_GUARDED_BY(mu_) = false;
  // per-batch scratch
  std::vector<PendingReport> pending_ LOLOHA_GUARDED_BY(mu_);
  CollectorStats stats_ LOLOHA_GUARDED_BY(mu_);
};

class DBitFlipCollector : public Collector {
 public:
  DBitFlipCollector(const Bucketizer& bucketizer, uint32_t d, double eps_perm,
                    const CollectorOptions& options = {});

  bool HandleHello(uint64_t user_id, const std::string& bytes) override;
  bool HandleReport(uint64_t user_id, const std::string& bytes) override;

  // Accepted reports scatter their d bits into per-shard privatized
  // support / sampler rows on the pool.
  uint64_t IngestBatch(std::span<const Message> batch) override;

  // Returns the estimated b-bin bucket histogram for the closed step.
  std::vector<double> EndStep() override;

  StepAggregate EndStepAggregate() override;
  std::vector<double> EstimateAggregate(
      const StepAggregate& aggregate) const override;

  bool SaveSnapshot(const std::string& path, std::string* error) override;
  bool RestoreSnapshot(const std::string& path, std::string* error) override;
  std::string SnapshotSignature() const override { return signature_; }

  CollectorStats stats() const override {
    MutexLock lock(mu_);
    return stats_;
  }
  uint32_t current_step() const override {
    MutexLock lock(mu_);
    return step_;
  }
  uint64_t registered_users() const override {
    MutexLock lock(mu_);
    return store_->user_count();
  }
  StoreStats store_stats() const override {
    MutexLock lock(mu_);
    return store_->stats();
  }

  // Per-user slot: the d sampled bucket ids as d u32s.
  uint32_t slot_bytes() const { return d_ * sizeof(uint32_t); }

 private:
  struct PendingReport {
    const uint32_t* sampled = nullptr;  // d ids in sampled_arena_
    const uint8_t* bits = nullptr;      // d bits in bits_arena_
  };

  bool HandleHelloLocked(uint64_t user_id, const std::string& bytes)
      LOLOHA_REQUIRES(mu_);
  void CheckpointLocked() LOLOHA_REQUIRES(mu_);
  void MergeShardRows() LOLOHA_REQUIRES(mu_);

  Bucketizer bucketizer_;
  uint32_t d_;
  double eps_perm_;
  PerturbParams params_;
  PoolLease pool_;
  uint32_t num_shards_;
  StoreConfig store_config_;
  std::string signature_;
  mutable Mutex mu_{lock_rank::kCollector};
  std::unique_ptr<UserStateStore> store_ LOLOHA_GUARDED_BY(mu_);
  uint32_t step_ LOLOHA_GUARDED_BY(mu_) = 0;
  uint64_t reports_this_step_ LOLOHA_GUARDED_BY(mu_) = 0;
  // n_j over reporters
  std::vector<uint64_t> samplers_per_bucket_ LOLOHA_GUARDED_BY(mu_);
  std::vector<uint64_t> support_ LOLOHA_GUARDED_BY(mu_);
  // Guarded between batches; written as disjoint per-shard rows behind
  // the ParallelFor barrier within a batch (see collector.cc pass 3).
  CacheAlignedRows<uint64_t> shard_support_ LOLOHA_GUARDED_BY(mu_);
  CacheAlignedRows<uint64_t> shard_samplers_ LOLOHA_GUARDED_BY(mu_);
  bool shard_rows_dirty_ LOLOHA_GUARDED_BY(mu_) = false;
  // per-batch decoded bits / copied-out sampled sets, batch x d each.
  // Copies, not slot pointers: a same-batch hello can rehash the store.
  std::vector<uint8_t> bits_arena_ LOLOHA_GUARDED_BY(mu_);
  std::vector<uint32_t> sampled_arena_ LOLOHA_GUARDED_BY(mu_);
  std::vector<PendingReport> pending_ LOLOHA_GUARDED_BY(mu_);
  CollectorStats stats_ LOLOHA_GUARDED_BY(mu_);
};

// Builds the collector serving `spec` over a domain of size k (the domain
// size is a deployment property, not part of the spec). Supported specs:
// the LOLOHA variants (hash range from the spec) and the dBitFlipPM
// variants (bucket layout and d from the spec). Protocols without a wire
// collector (the UE family, L-GRR, Naive-OLH) CHECK-fail.
std::unique_ptr<Collector> MakeCollector(const ProtocolSpec& spec, uint32_t k,
                                         const CollectorOptions& options = {});

}  // namespace loloha

#endif  // LOLOHA_SERVER_COLLECTOR_H_

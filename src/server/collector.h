// Streaming collection services: the server-side glue a deployment runs.
//
// A collector consumes wire-encoded messages (see wire/encoding.h),
// validates them, tracks per-user sessions, rejects duplicates and
// malformed input, and produces per-step frequency estimates. All
// aggregation is streaming — a report is folded into the support counts
// on arrival and never stored.
//
// Two collectors are provided: `LolohaCollector` (the paper's protocol;
// users send one hello carrying their hash, then one cell per step) and
// `DBitFlipCollector` (hello carries the sampled bucket set, then d bits
// per step).

#ifndef LOLOHA_SERVER_COLLECTOR_H_
#define LOLOHA_SERVER_COLLECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/loloha_params.h"
#include "longitudinal/dbitflip.h"
#include "util/hash.h"

namespace loloha {

// Why a message was rejected (for observability; counters are cumulative).
struct CollectorStats {
  uint64_t hellos_accepted = 0;
  uint64_t reports_accepted = 0;
  uint64_t rejected_malformed = 0;
  uint64_t rejected_unknown_user = 0;
  uint64_t rejected_duplicate = 0;
};

class LolohaCollector {
 public:
  explicit LolohaCollector(const LolohaParams& params);

  // Registers a user's hash function. Rejects malformed bytes and
  // re-registration with a *different* hash (idempotent on identical).
  bool HandleHello(uint64_t user_id, const std::string& bytes);

  // Folds one step report into the current step. Rejects unknown users,
  // malformed bytes, and second reports within the same step.
  bool HandleReport(uint64_t user_id, const std::string& bytes);

  // Closes the current step and returns its estimates (empty vector if no
  // reports arrived). Resets per-step state.
  std::vector<double> EndStep();

  uint64_t reports_this_step() const { return reports_this_step_; }
  uint64_t registered_users() const { return hashes_.size(); }
  const CollectorStats& stats() const { return stats_; }

 private:
  LolohaParams params_;
  std::unordered_map<uint64_t, UniversalHash> hashes_;
  std::unordered_map<uint64_t, uint32_t> reported_step_;  // user -> step no.
  uint32_t step_ = 0;
  uint64_t reports_this_step_ = 0;
  std::vector<uint64_t> support_;
  CollectorStats stats_;
};

class DBitFlipCollector {
 public:
  DBitFlipCollector(const Bucketizer& bucketizer, uint32_t d,
                    double eps_perm);

  bool HandleHello(uint64_t user_id, const std::string& bytes);
  bool HandleReport(uint64_t user_id, const std::string& bytes);

  // Returns the estimated b-bin bucket histogram for the closed step.
  std::vector<double> EndStep();

  const CollectorStats& stats() const { return stats_; }
  uint64_t registered_users() const { return sampled_.size(); }

 private:
  Bucketizer bucketizer_;
  uint32_t d_;
  PerturbParams params_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> sampled_;
  std::unordered_map<uint64_t, uint32_t> reported_step_;
  uint32_t step_ = 0;
  std::vector<uint64_t> samplers_per_bucket_;  // n_j over reporters
  std::vector<uint64_t> support_;
  CollectorStats stats_;
};

}  // namespace loloha

#endif  // LOLOHA_SERVER_COLLECTOR_H_

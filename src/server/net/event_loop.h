// Minimal level-triggered epoll event loop.
//
// One thread owns the loop and drives Poll(); callbacks run on that
// thread, so loop-owned state (connection buffers, pending batches)
// needs no lock. The only cross-thread entry point is Wakeup(), which
// pokes an eventfd so a Poll() blocked in epoll_wait returns — that is
// how the ingest server's shard workers signal "queue has space" and how
// Stop() interrupts a parked loop.
//
// Level-triggered by choice: the ingest server gates backpressure by
// dropping EPOLLIN from a connection's interest set and re-adding it
// later, which is only race-free under level semantics (any bytes that
// arrived while gated re-arm the fd the moment EPOLLIN returns).
//
// The loop never owns file descriptors — callers open, register, and
// close them. Remove() only detaches; a callback may Remove() (and then
// close) any fd, including its own, mid-dispatch: Poll() re-checks
// registration before every callback, so events already harvested for a
// removed fd are dropped, never dispatched stale.

#ifndef LOLOHA_SERVER_NET_EVENT_LOOP_H_
#define LOLOHA_SERVER_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>

namespace loloha {

class EventLoop {
 public:
  // Receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using Callback = std::function<void(uint32_t)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // False when epoll/eventfd creation failed at construction; every
  // other method is a safe no-op in that state.
  bool ok() const { return epoll_fd_ >= 0 && wake_fd_ >= 0; }

  // Registers `fd` with interest mask `events`. One callback per fd.
  bool Add(int fd, uint32_t events, Callback callback);

  // Replaces the interest mask of a registered fd (the callback stays).
  // An empty mask parks the fd: registered but silent — the gating idiom.
  bool Modify(int fd, uint32_t events);

  // Detaches the fd from the loop. The caller still owns (and closes) it.
  void Remove(int fd);

  // Waits up to `timeout_ms` for events (-1 = no timeout) and dispatches
  // callbacks. Returns the number of callbacks dispatched (0 on timeout
  // or spurious wake), -1 on epoll_wait failure. Wakeup() counts as a
  // wake but dispatches nothing.
  int Poll(int timeout_ms);

  // Thread-safe: makes the current (or next) Poll return promptly.
  void Wakeup();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  // Ordered map: the loop's per-event lookups don't need hashing, and
  // deterministic iteration keeps the container clear of the repo's
  // unordered-iteration lint should a sweep ever be added.
  std::map<int, Callback> callbacks_;
};

}  // namespace loloha

#endif  // LOLOHA_SERVER_NET_EVENT_LOOP_H_

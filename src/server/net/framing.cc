#include "server/net/framing.h"

#include <bit>
#include <cstring>

#include "util/check.h"

namespace loloha {

namespace {

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* data) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* data) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[i])) << (8 * i);
  }
  return v;
}

bool IsEmptyControl(FrameType type) {
  return type == FrameType::kBarrier || type == FrameType::kBarrierAck ||
         type == FrameType::kEndStep || type == FrameType::kShutdown;
}

void PutHeader(uint32_t payload_len, FrameType type, std::string* out) {
  PutU32(payload_len, out);
  out->push_back(static_cast<char>(type));
}

}  // namespace

void AppendDataFrame(uint64_t user_id, const std::string& message_bytes,
                     std::string* out) {
  PutHeader(static_cast<uint32_t>(8 + message_bytes.size()), FrameType::kData,
            out);
  PutU64(user_id, out);
  out->append(message_bytes);
}

void AppendControlFrame(FrameType type, std::string* out) {
  LOLOHA_CHECK_MSG(IsEmptyControl(type),
                   "not an empty-payload control frame type");
  PutHeader(0, type, out);
}

void AppendEstimatesFrame(std::span<const double> estimates,
                          std::string* out) {
  PutHeader(static_cast<uint32_t>(4 + 8 * estimates.size()),
            FrameType::kEstimates, out);
  PutU32(static_cast<uint32_t>(estimates.size()), out);
  for (const double e : estimates) PutU64(std::bit_cast<uint64_t>(e), out);
}

void FrameParser::Feed(const char* data, size_t size) {
  if (error_) return;  // the stream is already dead; drop the bytes
  // Compact before growing: everything below pos_ is consumed.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= 64 * 1024)) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, size);
}

FrameStatus FrameParser::Next(Frame* frame) {
  if (error_) return FrameStatus::kError;
  const size_t available = buffer_.size() - pos_;
  if (available < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const char* header = buffer_.data() + pos_;
  const uint32_t payload_len = GetU32(header);
  const uint8_t raw_type = static_cast<uint8_t>(header[4]);
  if (payload_len > max_payload_ ||
      raw_type < static_cast<uint8_t>(FrameType::kData) ||
      raw_type > static_cast<uint8_t>(FrameType::kShutdown)) {
    error_ = true;
    return FrameStatus::kError;
  }
  if (available < kFrameHeaderBytes + payload_len) {
    return FrameStatus::kNeedMore;
  }
  const FrameType type = static_cast<FrameType>(raw_type);
  const char* payload = header + kFrameHeaderBytes;

  frame->type = type;
  frame->message = Message{};
  frame->estimates.clear();
  switch (type) {
    case FrameType::kData:
      if (payload_len < 8) {
        error_ = true;
        return FrameStatus::kError;
      }
      frame->message.user_id = GetU64(payload);
      frame->message.bytes.assign(payload + 8, payload_len - 8);
      break;
    case FrameType::kEstimates: {
      if (payload_len < 4) {
        error_ = true;
        return FrameStatus::kError;
      }
      const uint32_t count = GetU32(payload);
      if (payload_len != 4 + 8ull * count) {
        error_ = true;
        return FrameStatus::kError;
      }
      frame->estimates.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        frame->estimates[i] =
            std::bit_cast<double>(GetU64(payload + 4 + 8ull * i));
      }
      break;
    }
    default:
      if (payload_len != 0) {
        error_ = true;
        return FrameStatus::kError;
      }
      break;
  }
  pos_ += kFrameHeaderBytes + payload_len;
  return FrameStatus::kFrame;
}

}  // namespace loloha

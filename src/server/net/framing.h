// Length-delimited framing for the TCP ingestion front.
//
// TCP is a byte stream; this module maps it onto the repo's message
// layer (wire/encoding.h). Every frame is
//
//   u32 payload_len (LE) | u8 frame_type | payload[payload_len]
//
// and the payload of a data frame is `u64 user_id (LE) | message bytes`,
// i.e. exactly one wire-encoded hello/report with its sender tag — the
// `Message` the collectors ingest. Control frames sequence the stream:
// kBarrier/kBarrierAck give a client a per-connection "everything I sent
// is decoded" handshake, kEndStep closes the global collection step (the
// server replies kEstimates, whose payload carries the estimates as raw
// IEEE-754 bit patterns so a client sees the exact doubles the server
// computed), and kShutdown asks the server to drain and exit.
//
// Decode-side validation mirrors wire/encoding.h: a malformed byte
// stream never crashes the server. FrameParser returns kError on any
// structural violation (oversized length, unknown type, payload shape
// mismatch) and stays in the error state — the connection is beyond
// resynchronization and must be closed. Truncation is not an error
// until the peer hangs up: kNeedMore simply awaits more bytes.
//
// The full layout, versioning rules, and worked hex examples live in
// docs/WIRE_PROTOCOL.md.

#ifndef LOLOHA_SERVER_NET_FRAMING_H_
#define LOLOHA_SERVER_NET_FRAMING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/encoding.h"

namespace loloha {

enum class FrameType : uint8_t {
  kData = 1,        // client -> server: u64 user_id + wire message bytes
  kBarrier = 2,     // client -> server: empty; request a kBarrierAck
  kBarrierAck = 3,  // server -> client: empty; all prior frames decoded
  kEndStep = 4,     // client -> server: empty; close the collection step
  kEstimates = 5,   // server -> client: u32 count + count x f64 (LE bits)
  kShutdown = 6,    // client -> server: empty; drain and exit gracefully
};

// Frame header: u32 payload length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

// Default FrameParser payload cap. Generous: the largest legitimate
// payload is a kData frame around one wire message (tens of bytes for
// every protocol in the tree).
inline constexpr uint32_t kDefaultMaxFramePayload = 1u << 20;

// One parsed frame. `message` is meaningful for kData, `estimates` for
// kEstimates; both are empty otherwise.
struct Frame {
  FrameType type = FrameType::kBarrier;
  Message message;
  std::vector<double> estimates;
};

// ---------------------------------------------------------------------------
// Encoders (infallible). All append to `out` so a caller can pack many
// frames into one buffer and hand the kernel a single write.
// ---------------------------------------------------------------------------

void AppendDataFrame(uint64_t user_id, const std::string& message_bytes,
                     std::string* out);
// `type` must be one of the empty-payload control types (kBarrier,
// kBarrierAck, kEndStep, kShutdown); CHECK-fails otherwise.
void AppendControlFrame(FrameType type, std::string* out);
void AppendEstimatesFrame(std::span<const double> estimates,
                          std::string* out);

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

enum class FrameStatus {
  kFrame,     // one frame extracted
  kNeedMore,  // buffered bytes form no complete frame yet
  kError,     // structural violation; the stream cannot be resynced
};

// Incremental frame extractor over an append-only byte buffer. Feed()
// whatever the socket produced, then call Next() until it stops
// returning kFrame. Not thread-safe; one parser per connection.
class FrameParser {
 public:
  explicit FrameParser(uint32_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t size);

  // Extracts the next frame into *frame. After kError every further call
  // returns kError (the error is sticky).
  FrameStatus Next(Frame* frame);

  // Bytes fed but not yet consumed by a returned frame. Nonzero at EOF
  // means the peer hung up mid-frame (a truncated frame).
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  uint32_t max_payload_;
  std::string buffer_;
  size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace loloha

#endif  // LOLOHA_SERVER_NET_FRAMING_H_

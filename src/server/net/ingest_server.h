// The network ingestion front: a TCP server feeding sharded collectors.
//
// One epoll event-loop thread (server/net/event_loop.h) accepts
// length-framed connections (server/net/framing.h), accumulates decoded
// `Message`s into per-shard batches, and hands full batches to N shard
// workers, each owning a private Collector built from the same
// ProtocolSpec. Shards partition users by `user_id % N`, so a user's
// whole session (hello, dedup state, reports) lives in exactly one
// collector and ingest scales across cores with no lock shared between
// shards. A collection step closes on a kEndStep frame: the loop
// flushes and drains every shard, sums the shards' integer
// StepAggregates (server/collector.h), and estimates the merged
// aggregate — byte-identical to one collector fed the same traffic,
// which bench_client_load and tests/ingest_server_test.cc assert.
//
// Flush policy: a shard's pending batch is cut when it reaches
// `flush_max_batch` messages or has been open for `flush_deadline_ms`
// (epoll's timeout doubles as the flush timer), or unconditionally at a
// step/shutdown barrier.
//
// Backpressure: each shard's batch queue is bounded. When a push would
// overflow, the batch parks as the shard's stalled batch and the loop
// gates ingestion — EPOLLIN is dropped from every connection, so bytes
// queue in the kernel and TCP flow control pushes back on clients.
// Workers wake the loop as they drain; the stalled batch is retried,
// buffered frames are re-processed, and EPOLLIN returns.
//
// Observability: a second listening port serves a plain-text stats
// snapshot per connection (`key: value` lines — CollectorStats sums,
// frame/flush/backpressure counters, TrendMonitor alerts) and closes.
// Format documented in docs/OPERATIONS.md.
//
// Threading: Start() spawns the shard workers; Run() is the event loop
// and must be driven by exactly one thread; Stop() may be called from
// any thread (including a signal handler — it only writes an atomic and
// an eventfd). port()/stats_port() are valid after Start();
// step_estimates() and server_stats() are stable once Run() returns.
// TotalStats() is safe at any time (collectors are internally
// synchronized).

#ifndef LOLOHA_SERVER_NET_INGEST_SERVER_H_
#define LOLOHA_SERVER_NET_INGEST_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/collector.h"
#include "server/monitor.h"
#include "server/net/event_loop.h"
#include "server/net/framing.h"
#include "sim/protocol_spec.h"
#include "util/thread_annotations.h"

namespace loloha {

struct IngestServerConfig {
  // Listen address for both ports. Port 0 binds an ephemeral port —
  // read the kernel's choice back via port() / stats_port().
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;
  bool enable_stats = true;
  uint16_t stats_port = 0;

  // Collector shards (users partitioned by user_id % num_shards).
  uint32_t num_shards = 1;

  // Flush policy: cut a shard's pending batch at this many messages ...
  uint32_t flush_max_batch = 4096;
  // ... or when the batch has been open this long.
  uint32_t flush_deadline_ms = 10;

  // Bounded per-shard queue, in batches; the backpressure threshold.
  uint32_t queue_capacity = 8;

  // FrameParser payload cap per connection.
  uint32_t max_frame_payload = kDefaultMaxFramePayload;

  // Optional TrendMonitor over the per-step estimates, constructed at
  // the first non-empty step (n = that step's report count).
  bool enable_monitor = false;
  double monitor_smoothing = 0.4;
  double monitor_z_threshold = 4.0;

  // Per-shard collector threading + state backend (see CollectorOptions).
  // The default single-threaded collectors are right when num_shards
  // covers the cores; a borrowed pool composes with fewer, fatter
  // shards. The store config is cloned per shard: with
  // `store.kind == StoreKind::kSnapshot` each shard checkpoints to
  // `<snapshot_dir>/shard_<i>-of-<N>.snap` (store.snapshot_path and
  // signature_suffix are overwritten per shard — the server stamps
  // "shard=i/N" into every snapshot so a file can never restore into
  // the wrong shard or shard count).
  CollectorOptions collector_options;

  // Directory for shard snapshots (created at Start() if missing).
  // Required when the store kind is kSnapshot.
  std::string snapshot_dir;

  // Restore existing shard snapshots at Start(). A corrupt or
  // mismatched snapshot, or a set torn across shards (files from
  // different steps, or only some shards present), fails Start() with
  // the reason on stderr — never a silent partial load. No snapshot
  // files at all is a fresh start.
  bool restore_snapshots = false;
};

// Loop-thread counters (returned by value; see server_stats()).
struct IngestServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_active = 0;
  uint64_t frames_data = 0;
  uint64_t frames_control = 0;
  uint64_t protocol_errors = 0;
  uint64_t batches_flushed_size = 0;
  uint64_t batches_flushed_deadline = 0;
  uint64_t batches_flushed_barrier = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t steps_completed = 0;
  uint64_t monitor_alerts = 0;
  uint64_t shards_restored = 0;

  friend bool operator==(const IngestServerStats&,
                         const IngestServerStats&) = default;
};

class IngestServer {
 public:
  // `spec` must name a protocol MakeCollector serves (the LOLOHA and
  // dBitFlipPM variants); `k` is the deployment's domain size.
  IngestServer(const ProtocolSpec& spec, uint32_t k,
               const IngestServerConfig& config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  // Binds and listens on both ports and spawns the shard workers.
  // Returns false (with the sockets torn down) on any setup failure.
  bool Start();

  // The event loop. Blocks until Stop() or a kShutdown frame, then
  // drains every shard gracefully before returning. Call at most once,
  // after a successful Start().
  void Run();

  // Thread- and signal-safe shutdown request.
  void Stop();

  uint16_t port() const { return port_; }
  uint16_t stats_port() const { return stats_port_; }

  // Estimates of every closed step, in step order. Stable after Run()
  // returns (mutated only by the loop thread).
  const std::vector<std::vector<double>>& step_estimates() const {
    return step_estimates_;
  }

  // Sum of the shard collectors' counters. Safe from any thread.
  CollectorStats TotalStats() const;
  uint64_t TotalRegisteredUsers() const;

  // Element-wise sum of the shard stores' stats (kind from the config).
  StoreStats TotalStoreStats() const;

  // Where shard `shard` checkpoints / restores its snapshot.
  std::string ShardSnapshotPath(uint32_t shard) const;

  // Snapshot of the loop counters. Safe from the loop thread, or from
  // any thread once Run() has returned.
  IngestServerStats server_stats() const { return stats_; }

 private:
  struct Connection {
    explicit Connection(uint32_t max_payload) : parser(max_payload) {}
    int fd = -1;
    FrameParser parser;
    std::string out;      // unwritten reply bytes
    size_t out_pos = 0;   // already-written prefix of `out`
    bool is_stats = false;
    bool close_after_write = false;
  };

  // Queue state is shared with the shard's worker thread and guarded by
  // `mu`; `pending`/`stalled`/`deadline` belong to the loop thread alone.
  struct Shard {
    std::unique_ptr<Collector> collector;

    std::vector<Message> pending;
    std::chrono::steady_clock::time_point deadline{};
    bool has_stalled = false;
    std::vector<Message> stalled;

    Mutex mu{lock_rank::kIngestShardQueue};
    CondVar cv_work;   // worker waits for batches / stop
    CondVar cv_space;  // loop waits for queue space / drain
    std::deque<std::vector<Message>> queue LOLOHA_GUARDED_BY(mu);
    bool busy LOLOHA_GUARDED_BY(mu) = false;
    bool stop LOLOHA_GUARDED_BY(mu) = false;
    std::thread worker;
  };

  enum class FlushReason { kSize, kDeadline, kBarrier };

  bool SetupListener(uint16_t want_port, int* fd, uint16_t* got_port);
  bool RestoreShards();
  void WorkerLoop(Shard* shard);
  void StopWorkers();

  void OnAccept(int listen_fd, bool is_stats);
  void OnConnectionEvent(int fd, uint32_t events);
  // Returns false when the connection was closed.
  bool DrainParser(Connection* conn);
  bool ProcessFrame(Connection* conn, Frame* frame);
  void RouteData(Message message);
  void CloseConnection(int fd);

  // Both return false when the connection was closed (write error, or an
  // intentional close once a close_after_write connection drains).
  bool SendBytes(Connection* conn, const std::string& bytes);
  bool FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);

  // On success moves *batch into the shard queue (leaving it empty); on a
  // full queue returns false with *batch untouched.
  bool TryPush(Shard* shard, std::vector<Message>* batch);
  void BlockingPush(Shard* shard, std::vector<Message> batch);
  void FlushShard(Shard* shard, FlushReason reason);
  void FlushAllAndDrain();
  void RetryStalledPushes();
  void GateInput();
  void UngateInput();
  int NextTimeoutMs() const;
  void FlushDueShards();

  bool DoEndStep(Connection* conn);
  std::string BuildStatsText() const;

  ProtocolSpec spec_;
  uint32_t k_;
  IngestServerConfig config_;

  EventLoop loop_;
  int listen_fd_ = -1;
  int stats_listen_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t stats_port_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<int, std::unique_ptr<Connection>> connections_;
  bool gated_ = false;

  std::vector<std::vector<double>> step_estimates_;
  std::optional<TrendMonitor> monitor_;
  IngestServerStats stats_;
};

}  // namespace loloha

#endif  // LOLOHA_SERVER_NET_INGEST_SERVER_H_

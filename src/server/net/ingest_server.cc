#include "server/net/ingest_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

#include "util/check.h"

namespace loloha {

namespace {

void AppendStatLine(const char* key, uint64_t value, std::string* out) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s: %llu\n", key,
                static_cast<unsigned long long>(value));
  out->append(line);
}

}  // namespace

IngestServer::IngestServer(const ProtocolSpec& spec, uint32_t k,
                           const IngestServerConfig& config)
    : spec_(spec.Canonicalized()), k_(k), config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  if (config_.flush_max_batch == 0) config_.flush_max_batch = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  const bool snapshotting =
      config_.collector_options.store.kind == StoreKind::kSnapshot;
  LOLOHA_CHECK_MSG(!snapshotting || !config_.snapshot_dir.empty(),
                   "snapshot store requires IngestServerConfig::snapshot_dir");
  for (uint32_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    CollectorOptions options = config_.collector_options;
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, "shard=%u/%u", i,
                  config_.num_shards);
    options.signature_suffix = suffix;
    if (snapshotting) options.store.snapshot_path = ShardSnapshotPath(i);
    shard->collector = MakeCollector(spec_, k_, options);
    shards_.push_back(std::move(shard));
  }
}

IngestServer::~IngestServer() {
  StopWorkers();
  for (const auto& [fd, conn] : connections_) close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (stats_listen_fd_ >= 0) close(stats_listen_fd_);
}

bool IngestServer::SetupListener(uint16_t want_port, int* fd_out,
                                 uint16_t* got_port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(want_port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 128) != 0) {
    close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close(fd);
    return false;
  }
  *got_port = ntohs(bound.sin_port);
  *fd_out = fd;
  return true;
}

std::string IngestServer::ShardSnapshotPath(uint32_t shard) const {
  char name[48];
  std::snprintf(name, sizeof name, "shard_%u-of-%u.snap", shard,
                config_.num_shards);
  return config_.snapshot_dir + "/" + name;
}

bool IngestServer::RestoreShards() {
  // All shards or none: a strict subset means the snapshot set is torn
  // (a shard file vanished, or the shard count changed), and loading it
  // would silently drop those shards' sessions.
  uint32_t present = 0;
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    struct stat st {};
    if (::stat(ShardSnapshotPath(i).c_str(), &st) == 0) ++present;
  }
  if (present == 0) return true;  // fresh start
  if (present != shards_.size()) {
    std::fprintf(stderr,
                 "ingest server: refusing to restore: %u of %zu shard "
                 "snapshots present under %s\n",
                 present, shards_.size(), config_.snapshot_dir.c_str());
    return false;
  }
  for (uint32_t i = 0; i < shards_.size(); ++i) {
    std::string error;
    if (!shards_[i]->collector->RestoreSnapshot(ShardSnapshotPath(i),
                                                &error)) {
      std::fprintf(stderr, "ingest server: refusing to restore: %s\n",
                   error.c_str());
      return false;
    }
    // Checkpoints write shard by shard inside the end-of-step drain, so
    // a crash there can leave shards on different steps — that set does
    // not represent any consistent step boundary.
    if (shards_[i]->collector->current_step() !=
        shards_[0]->collector->current_step()) {
      std::fprintf(stderr,
                   "ingest server: refusing to restore: shard snapshots "
                   "torn across steps (shard 0 at %u, shard %u at %u)\n",
                   shards_[0]->collector->current_step(), i,
                   shards_[i]->collector->current_step());
      return false;
    }
    ++stats_.shards_restored;
  }
  return true;
}

bool IngestServer::Start() {
  LOLOHA_CHECK_MSG(!started_, "IngestServer::Start() called twice");
  if (!loop_.ok()) return false;
  if (config_.collector_options.store.kind == StoreKind::kSnapshot) {
    // Best-effort create; a missing directory surfaces as a checkpoint
    // write error (counted, step still serves) rather than a crash.
    ::mkdir(config_.snapshot_dir.c_str(), 0755);
    if (config_.restore_snapshots && !RestoreShards()) return false;
  }
  if (!SetupListener(config_.port, &listen_fd_, &port_)) return false;
  loop_.Add(listen_fd_, EPOLLIN,
            [this](uint32_t) { OnAccept(listen_fd_, /*is_stats=*/false); });
  if (config_.enable_stats) {
    if (!SetupListener(config_.stats_port, &stats_listen_fd_, &stats_port_)) {
      loop_.Remove(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    loop_.Add(stats_listen_fd_, EPOLLIN,
              [this](uint32_t) { OnAccept(stats_listen_fd_, /*is_stats=*/true); });
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { WorkerLoop(s); });
  }
  started_ = true;
  return true;
}

void IngestServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  loop_.Wakeup();
}

void IngestServer::Run() {
  LOLOHA_CHECK_MSG(started_, "IngestServer::Run() before Start()");
  while (!stop_.load(std::memory_order_relaxed)) {
    loop_.Poll(NextTimeoutMs());
    if (stop_.load(std::memory_order_relaxed)) break;
    RetryStalledPushes();
    FlushDueShards();
  }
  // Graceful drain: every decoded message reaches its collector before
  // the workers stop and the sockets close.
  FlushAllAndDrain();
  StopWorkers();
  while (!connections_.empty()) CloseConnection(connections_.begin()->first);
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (stats_listen_fd_ >= 0) {
    loop_.Remove(stats_listen_fd_);
    close(stats_listen_fd_);
    stats_listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Shard workers.
// ---------------------------------------------------------------------------

void IngestServer::WorkerLoop(Shard* shard) {
  for (;;) {
    std::vector<Message> batch;
    {
      MutexLock lock(shard->mu);
      shard->cv_work.Wait(lock, [shard] {
        shard->mu.AssertHeld();
        return shard->stop || !shard->queue.empty();
      });
      if (shard->queue.empty()) return;  // stop requested and fully drained
      batch = std::move(shard->queue.front());
      shard->queue.pop_front();
      shard->busy = true;
    }
    // Space just freed: the loop may be parked on a stalled batch.
    shard->cv_space.NotifyAll();
    loop_.Wakeup();
    shard->collector->IngestBatch(batch);
    {
      MutexLock lock(shard->mu);
      shard->busy = false;
    }
    shard->cv_space.NotifyAll();
  }
}

void IngestServer::StopWorkers() {
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->mu);
      shard->stop = true;
    }
    shard->cv_work.NotifyAll();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

bool IngestServer::TryPush(Shard* shard, std::vector<Message>* batch) {
  {
    MutexLock lock(shard->mu);
    if (shard->queue.size() >= config_.queue_capacity) return false;
    shard->queue.push_back(std::move(*batch));
  }
  batch->clear();
  shard->cv_work.NotifyOne();
  return true;
}

void IngestServer::BlockingPush(Shard* shard, std::vector<Message> batch) {
  {
    MutexLock lock(shard->mu);
    shard->cv_space.Wait(lock, [this, shard] {
      shard->mu.AssertHeld();
      return shard->queue.size() < config_.queue_capacity;
    });
    shard->queue.push_back(std::move(batch));
  }
  shard->cv_work.NotifyOne();
}

// ---------------------------------------------------------------------------
// Flush policy and backpressure (loop thread).
// ---------------------------------------------------------------------------

void IngestServer::FlushShard(Shard* shard, FlushReason reason) {
  // A stalled batch must enter the queue first (per-shard FIFO is what
  // keeps a user's hello ordered before their reports).
  if (shard->has_stalled || shard->pending.empty()) return;
  switch (reason) {
    case FlushReason::kSize:
      ++stats_.batches_flushed_size;
      break;
    case FlushReason::kDeadline:
      ++stats_.batches_flushed_deadline;
      break;
    case FlushReason::kBarrier:
      ++stats_.batches_flushed_barrier;
      break;
  }
  if (!TryPush(shard, &shard->pending)) {
    shard->stalled = std::move(shard->pending);
    shard->pending.clear();
    shard->has_stalled = true;
    ++stats_.backpressure_stalls;
    GateInput();
  }
}

void IngestServer::RetryStalledPushes() {
  if (!gated_) return;
  bool any_left = false;
  for (auto& shard : shards_) {
    if (!shard->has_stalled) continue;
    if (TryPush(shard.get(), &shard->stalled)) {
      shard->has_stalled = false;
    } else {
      any_left = true;
    }
  }
  if (!any_left) UngateInput();
}

void IngestServer::GateInput() {
  if (gated_) return;
  gated_ = true;
  for (auto& [fd, conn] : connections_) UpdateInterest(conn.get());
}

void IngestServer::UngateInput() {
  if (!gated_) return;
  gated_ = false;
  // Frames decoded while gated sat in their connections' parser buffers
  // (the socket re-arms via level triggering, the parser does not).
  // Re-process them now; any one may stall and re-gate, in which case
  // the rest stay buffered for the next ungate.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    if (gated_) return;
    const auto it = connections_.find(fd);
    if (it == connections_.end() || it->second->is_stats) continue;
    DrainParser(it->second.get());
  }
  if (gated_) return;
  for (auto& [fd, conn] : connections_) UpdateInterest(conn.get());
}

int IngestServer::NextTimeoutMs() const {
  int timeout = -1;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& shard : shards_) {
    if (shard->pending.empty() || shard->has_stalled) continue;
    const auto remaining =
        std::chrono::ceil<std::chrono::milliseconds>(shard->deadline - now)
            .count();
    const int ms = remaining < 0 ? 0 : static_cast<int>(remaining);
    if (timeout < 0 || ms < timeout) timeout = ms;
  }
  return timeout;
}

void IngestServer::FlushDueShards() {
  const auto now = std::chrono::steady_clock::now();
  for (auto& shard : shards_) {
    if (shard->pending.empty() || shard->has_stalled) continue;
    if (now >= shard->deadline) FlushShard(shard.get(), FlushReason::kDeadline);
  }
}

void IngestServer::FlushAllAndDrain() {
  for (auto& shard : shards_) {
    if (shard->has_stalled) {
      BlockingPush(shard.get(), std::move(shard->stalled));
      shard->stalled.clear();
      shard->has_stalled = false;
    }
    if (!shard->pending.empty()) {
      ++stats_.batches_flushed_barrier;
      BlockingPush(shard.get(), std::move(shard->pending));
      shard->pending.clear();
    }
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    MutexLock lock(s->mu);
    s->cv_space.Wait(lock, [s] {
      s->mu.AssertHeld();
      return s->queue.empty() && !s->busy;
    });
  }
}

// ---------------------------------------------------------------------------
// Connections (loop thread).
// ---------------------------------------------------------------------------

void IngestServer::OnAccept(int listen_fd, bool is_stats) {
  for (;;) {
    const int fd =
        accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error; listener stays armed
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(config_.max_frame_payload);
    conn->fd = fd;
    conn->is_stats = is_stats;
    conn->close_after_write = is_stats;
    Connection* raw = conn.get();
    connections_[fd] = std::move(conn);
    ++stats_.connections_accepted;
    ++stats_.connections_active;
    uint32_t mask = 0;
    if (!is_stats && !gated_) mask = EPOLLIN;
    loop_.Add(fd, mask, [this, fd](uint32_t events) {
      OnConnectionEvent(fd, events);
    });
    // A stats connection gets one snapshot, then closes once it drains.
    if (is_stats) SendBytes(raw, BuildStatsText());
  }
}

void IngestServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.Remove(fd);
  close(fd);
  connections_.erase(it);
  ++stats_.connections_closed;
  --stats_.connections_active;
}

void IngestServer::UpdateInterest(Connection* conn) {
  uint32_t mask = 0;
  if (!conn->is_stats && !gated_) mask |= EPOLLIN;
  if (conn->out_pos < conn->out.size()) mask |= EPOLLOUT;
  loop_.Modify(conn->fd, mask);
}

bool IngestServer::SendBytes(Connection* conn, const std::string& bytes) {
  conn->out.append(bytes);
  return FlushWrites(conn);
}

bool IngestServer::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = write(conn->fd, conn->out.data() + conn->out_pos,
                            conn->out.size() - conn->out_pos);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn->fd);
    return false;
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->close_after_write) {
      CloseConnection(conn->fd);
      return false;
    }
  }
  UpdateInterest(conn);
  return true;
}

void IngestServer::OnConnectionEvent(int fd, uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConnection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    if (!FlushWrites(conn)) return;
  }
  if ((events & EPOLLIN) && !conn->is_stats) {
    char buf[64 * 1024];
    for (;;) {
      // Gated mid-read: stop pulling bytes; the kernel buffer fills and
      // TCP flow control pushes back on the client.
      if (gated_) break;
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->parser.Feed(buf, static_cast<size_t>(n));
        if (!DrainParser(conn)) return;
        continue;
      }
      if (n == 0) {
        // EOF. Bytes still buffered mean the peer died mid-frame.
        if (conn->parser.buffered() > 0) ++stats_.protocol_errors;
        CloseConnection(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(fd);
      return;
    }
  }
}

bool IngestServer::DrainParser(Connection* conn) {
  Frame frame;
  for (;;) {
    if (gated_) return true;  // leave parsed frames buffered until ungate
    const FrameStatus status = conn->parser.Next(&frame);
    if (status == FrameStatus::kNeedMore) return true;
    if (status == FrameStatus::kError) {
      ++stats_.protocol_errors;
      CloseConnection(conn->fd);
      return false;
    }
    if (!ProcessFrame(conn, &frame)) return false;
  }
}

// ---------------------------------------------------------------------------
// Frame semantics (loop thread).
// ---------------------------------------------------------------------------

bool IngestServer::ProcessFrame(Connection* conn, Frame* frame) {
  switch (frame->type) {
    case FrameType::kData:
      ++stats_.frames_data;
      RouteData(std::move(frame->message));
      return true;
    case FrameType::kBarrier: {
      ++stats_.frames_control;
      // Everything this connection sent before the barrier is decoded
      // (frames process in order) and — after this flush — queued on its
      // shard, so per-shard FIFO orders it before any later report.
      for (auto& shard : shards_) {
        FlushShard(shard.get(), FlushReason::kBarrier);
      }
      std::string reply;
      AppendControlFrame(FrameType::kBarrierAck, &reply);
      return SendBytes(conn, reply);
    }
    case FrameType::kEndStep:
      ++stats_.frames_control;
      return DoEndStep(conn);
    case FrameType::kShutdown:
      ++stats_.frames_control;
      stop_.store(true, std::memory_order_relaxed);
      return true;
    case FrameType::kBarrierAck:
    case FrameType::kEstimates:
      // Server-to-client frames arriving at the server: protocol error.
      ++stats_.protocol_errors;
      CloseConnection(conn->fd);
      return false;
  }
  return true;
}

void IngestServer::RouteData(Message message) {
  Shard* shard = shards_[message.user_id % shards_.size()].get();
  if (shard->pending.empty()) {
    shard->deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config_.flush_deadline_ms);
  }
  shard->pending.push_back(std::move(message));
  if (shard->pending.size() >= config_.flush_max_batch) {
    FlushShard(shard, FlushReason::kSize);
  }
}

bool IngestServer::DoEndStep(Connection* conn) {
  // kEndStep is never processed while gated (DrainParser parks frames),
  // so the blocking flush below starts from an ungated loop and the
  // workers drain it without deadlock.
  FlushAllAndDrain();
  StepAggregate merged;
  for (auto& shard : shards_) {
    MergeStepAggregate(shard->collector->EndStepAggregate(), &merged);
  }
  std::vector<double> estimates =
      shards_.front()->collector->EstimateAggregate(merged);
  if (config_.enable_monitor && !estimates.empty()) {
    if (!monitor_) {
      // n = the first non-empty step's report count: the natural scale
      // for the monitor's noise floor in a steady-state deployment.
      const double n = static_cast<double>(merged.reports);
      if (spec_.IsLolohaVariant()) {
        const LolohaParams params = LolohaParamsForSpec(spec_, k_);
        monitor_.emplace(static_cast<uint32_t>(estimates.size()), n,
                         params.EstimatorFirst(), params.irr,
                         config_.monitor_smoothing,
                         config_.monitor_z_threshold);
      } else {
        monitor_.emplace(static_cast<uint32_t>(estimates.size()), n,
                         SueParams(spec_.eps_perm), config_.monitor_smoothing,
                         config_.monitor_z_threshold);
      }
    }
    stats_.monitor_alerts += monitor_->Observe(estimates).size();
  }
  ++stats_.steps_completed;
  std::string reply;
  AppendEstimatesFrame(estimates, &reply);
  step_estimates_.push_back(std::move(estimates));
  return SendBytes(conn, reply);
}

// ---------------------------------------------------------------------------
// Observability.
// ---------------------------------------------------------------------------

CollectorStats IngestServer::TotalStats() const {
  CollectorStats totals;
  for (const auto& shard : shards_) {
    const CollectorStats s = shard->collector->stats();
    totals.hellos_accepted += s.hellos_accepted;
    totals.reports_accepted += s.reports_accepted;
    totals.rejected_malformed += s.rejected_malformed;
    totals.rejected_unknown_user += s.rejected_unknown_user;
    totals.rejected_duplicate += s.rejected_duplicate;
  }
  return totals;
}

uint64_t IngestServer::TotalRegisteredUsers() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->collector->registered_users();
  }
  return total;
}

StoreStats IngestServer::TotalStoreStats() const {
  StoreStats totals;
  totals.kind = config_.collector_options.store.kind;
  for (const auto& shard : shards_) {
    const StoreStats s = shard->collector->store_stats();
    totals.users += s.users;
    totals.memory_bytes += s.memory_bytes;
    totals.checkpoints_written += s.checkpoints_written;
    totals.checkpoint_failures += s.checkpoint_failures;
    totals.last_checkpoint_bytes += s.last_checkpoint_bytes;
  }
  return totals;
}

std::string IngestServer::BuildStatsText() const {
  std::string text = "loloha_ingest_server\n";
  text += "protocol: " + spec_.ToString() + "\n";
  AppendStatLine("k", k_, &text);
  AppendStatLine("shards", shards_.size(), &text);
  AppendStatLine("steps_completed", stats_.steps_completed, &text);
  AppendStatLine("registered_users", TotalRegisteredUsers(), &text);
  const CollectorStats totals = TotalStats();
  AppendStatLine("hellos_accepted", totals.hellos_accepted, &text);
  AppendStatLine("reports_accepted", totals.reports_accepted, &text);
  AppendStatLine("rejected_malformed", totals.rejected_malformed, &text);
  AppendStatLine("rejected_unknown_user", totals.rejected_unknown_user, &text);
  AppendStatLine("rejected_duplicate", totals.rejected_duplicate, &text);
  AppendStatLine("connections_active", stats_.connections_active, &text);
  AppendStatLine("connections_accepted", stats_.connections_accepted, &text);
  AppendStatLine("frames_data", stats_.frames_data, &text);
  AppendStatLine("frames_control", stats_.frames_control, &text);
  AppendStatLine("protocol_errors", stats_.protocol_errors, &text);
  AppendStatLine("batches_flushed_size", stats_.batches_flushed_size, &text);
  AppendStatLine("batches_flushed_deadline", stats_.batches_flushed_deadline,
                 &text);
  AppendStatLine("batches_flushed_barrier", stats_.batches_flushed_barrier,
                 &text);
  AppendStatLine("backpressure_stalls", stats_.backpressure_stalls, &text);
  const StoreStats store = TotalStoreStats();
  text += std::string("store_kind: ") + StoreKindName(store.kind) + "\n";
  AppendStatLine("store_memory_bytes", store.memory_bytes, &text);
  AppendStatLine("snapshots_written", store.checkpoints_written, &text);
  AppendStatLine("snapshot_failures", store.checkpoint_failures, &text);
  AppendStatLine("shards_restored", stats_.shards_restored, &text);
  AppendStatLine("monitor_enabled", config_.enable_monitor ? 1 : 0, &text);
  AppendStatLine("monitor_steps_observed",
                 monitor_ ? monitor_->steps_observed() : 0, &text);
  AppendStatLine("monitor_alerts", stats_.monitor_alerts, &text);
  return text;
}

}  // namespace loloha

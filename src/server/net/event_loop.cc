#include "server/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

namespace loloha {

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    close(wake_fd_);
    close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

bool EventLoop::Add(int fd, uint32_t events, Callback callback) {
  if (!ok()) return false;
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) return false;
  callbacks_[fd] = std::move(callback);
  return true;
}

bool EventLoop::Modify(int fd, uint32_t events) {
  if (!ok()) return false;
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0;
}

void EventLoop::Remove(int fd) {
  if (!ok()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EventLoop::Poll(int timeout_ms) {
  if (!ok()) return -1;
  std::array<epoll_event, 64> events;
  int n = -1;
  do {
    n = epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                   timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t drained = 0;
      // Failure means "nothing to drain" (EAGAIN) — benign either way.
      [[maybe_unused]] const ssize_t r =
          read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    // Re-check registration: an earlier callback in this batch may have
    // removed this fd (e.g. closed a connection).
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    it->second(events[i].events);
    ++dispatched;
  }
  return dispatched;
}

void EventLoop::Wakeup() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wake.
  [[maybe_unused]] const ssize_t r = write(wake_fd_, &one, sizeof(one));
}

}  // namespace loloha
